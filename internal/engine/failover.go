package engine

import (
	"fmt"
	"time"

	"decaf/internal/consensus"
	"decaf/internal/history"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Client-failure handling (paper §3.4). Failures are fail-stop: the
// transport notifies survivors and blocks further communication with the
// failed site. Three duties follow:
//
//  1. In-flight transactions whose ORIGINATING site failed are resolved by
//     querying the surviving sites: if any received a summary COMMIT the
//     transaction commits everywhere, else it aborts.
//  2. Transactions waiting on a failed PRIMARY site abort; they are
//     retried after the graph repair commits (the retry is parked).
//  3. Replication graphs drop the failed site's nodes. When the graph's
//     primary survives, it coordinates an ordinary timestamped graph
//     update. When the primary itself failed, the circularity (a primary
//     is a function of the graph, but committing the new graph needs a
//     primary) is broken by a consensus round among survivors.
//
// The consensus round is a single-decree Paxos instance per failed site
// (internal/consensus, DESIGN.md §14). Its member set is the pre-failure
// graph membership minus the failed site — NOT filtered by this site's
// local failure suspicions, so every survivor derives the same members
// and the same majority quorum even when their `failed` sets diverge.
// That quorum is what prevents split-brain: two sites that each believe
// they are the lowest survivor still propose to the same member set, and
// at most one value can be chosen. Any survivor can take over a stalled
// repair with a higher ballot (rank-staggered takeover timers), which is
// what fixes the coordinator-death stall of the old epoch protocol. The
// decided value carries the resolved outcomes of the failed originator's
// in-flight transactions, so parked retries resume exactly once.

// Repair timing. All delays route through the injectable Scheduler so
// the deterministic simulator explores them as virtual-clock events.
const (
	// repairTakeoverDelay is the base delay before a non-proposing
	// member takes over a repair that has not decided; it is staggered
	// by member rank so survivors probe in a fixed order instead of
	// dueling.
	repairTakeoverDelay = 250 * time.Millisecond
	// repairRetryDelay is the base backoff before a proposer retries a
	// stalled or preempted attempt at a higher ballot.
	repairRetryDelay = 100 * time.Millisecond
	// repairGraceDelay is how long a proposer holding a promise quorum
	// waits for straggler promises (whose KnownCommitted sets piggyback
	// commit knowledge) before sending the Accept round.
	repairGraceDelay = 25 * time.Millisecond
)

// queryState tracks an outstanding commit-query for one orphaned
// transaction.
type queryState struct {
	st        *txnState
	waiting   map[vtime.SiteID]bool
	committed bool
}

// repairState tracks one in-flight consensus-backed graph repair (keyed
// by failed site).
type repairState struct {
	failed vtime.SiteID
	inst   *consensus.Instance[wire.RepairValue]
	// commitKnown accumulates the union of every member's known COMMIT
	// outcomes for the failed site's in-flight transactions (merged from
	// RepairPromise piggybacks); the proposal commits exactly this set.
	commitKnown map[vtime.VT]bool
	// attempts counts proposal attempts (for retry backoff).
	attempts int
	// acceptSent dedupes the phase-2 trigger (quorum edge, grace timer,
	// and the all-live-promised early exit can all fire).
	acceptSent  bool
	cancelTimer func()
	cancelGrace func()
}

// cancelTimers stops the retry/takeover and grace timers, if armed.
func (rs *repairState) cancelTimers() {
	if rs.cancelTimer != nil {
		rs.cancelTimer()
		rs.cancelTimer = nil
	}
	if rs.cancelGrace != nil {
		rs.cancelGrace()
		rs.cancelGrace = nil
	}
}

// legacyRepairState tracks an epoch-based repair coordinated by an
// old-protocol peer (wire compatibility; this engine no longer initiates
// them).
type legacyRepairState struct {
	epoch       uint64
	failed      vtime.SiteID
	coordinator vtime.SiteID
	graphVT     vtime.VT
	survivors   []vtime.SiteID
	acks        map[vtime.SiteID]bool
	commitSet   map[vtime.VT]bool
}

// parkedRetry is a transaction retry deferred until graph repair.
type parkedRetry struct {
	txn     *Txn
	handle  *Handle
	retries int
}

// handleSiteFailure reacts to a fail-stop notification.
func (s *Site) handleSiteFailure(f vtime.SiteID) {
	if s.failed[f] {
		return
	}
	s.failed[f] = true
	s.log.Info("site failed", "failed", f.String())

	// (1) Resolve in-flight transactions originated at the failed site.
	// Iteration is VT-sorted so the resulting message schedule is
	// deterministic (see order.go).
	for _, vt := range sortedVTs(s.txns) {
		if st := s.txns[vt]; st.origin == f && st.status == txnApplied {
			s.startCommitQuery(vt, st)
		}
	}
	// (1b) Prune the newly failed site from every outstanding
	// commit-query's waiting set — it will never answer, and a query
	// left waiting on it hangs forever (which also wedges quiescence:
	// PendingUndecided never reaches zero).
	for _, vt := range sortedVTs(s.commitQueries) {
		q, ok := s.commitQueries[vt]
		if !ok || !q.waiting[f] {
			continue
		}
		delete(q.waiting, f)
		s.maybeFinishCommitQuery(vt, q)
	}
	// (2) Abort local transactions waiting on the failed site.
	for _, vt := range sortedVTs(s.txns) {
		st := s.txns[vt]
		if st.origin != s.id || st.status != txnWaiting {
			continue
		}
		if st.waitConfirms[f] || st.delegatedTo == f {
			st.parkOnAbort = true
			s.abortTxn(st, fmt.Sprintf("primary site %s failed", f))
		}
	}
	// (3) Repair replication graphs containing the failed site.
	s.repairGraphsFor(f)
	// (4) If the failed site was the expected proposer of some other
	// in-flight repair, the lowest remaining live member takes over
	// immediately instead of waiting out its takeover timer.
	for _, rf := range sortedSites(s.repairs) {
		rs, ok := s.repairs[rf]
		if !ok {
			continue
		}
		if _, done := rs.inst.Decided(); done {
			continue
		}
		if s.lowestLiveMember(rs.inst.Members()) == s.id && !rs.inst.Proposing() {
			s.repairPropose(rs)
		}
	}
}

// handleSiteRecovered reacts to the transport re-establishing contact
// with a previously suspected site: the engine stops treating it as
// dead so traffic flows again. Any §3.4 failover already performed
// (aborts, graph repair) stands — the recovered site must rejoin
// objects it was repaired out of, exactly like a restarted site. All
// repair state keyed by the recovered site is dropped, so a later
// failure of the same site starts a fresh consensus instance.
func (s *Site) handleSiteRecovered(f vtime.SiteID) {
	if !s.failed[f] {
		return
	}
	delete(s.failed, f)
	if rs, ok := s.repairs[f]; ok {
		rs.cancelTimers()
		delete(s.repairs, f)
	}
	delete(s.legacyRepairs, f)
	delete(s.repairDecided, f)
	s.log.Info("site recovered", "site", f.String())
	// Retries parked against the recovered primary can run again (if a
	// different failure still blocks them they re-park on the next
	// abort).
	s.unparkRetries()
}

// startCommitQuery polls survivors for knowledge of an orphaned
// transaction's outcome.
func (s *Site) startCommitQuery(vt vtime.VT, st *txnState) {
	// Survivors: every site hosting a replica of an object this
	// transaction updated here.
	waiting := map[vtime.SiteID]bool{}
	for _, o := range st.appliedObjects() {
		g, _ := o.currentGraph()
		if g == nil {
			continue
		}
		for _, site := range g.Sites() {
			if site != s.id && !s.failed[site] {
				waiting[site] = true
			}
		}
	}
	if len(waiting) == 0 {
		// No one else to ask: no COMMIT can exist (the origin died
		// before distributing one we'd have seen); abort.
		s.decideOrphan(vt, false)
		return
	}
	s.commitQueries[vt] = &queryState{st: st, waiting: waiting}
	for _, site := range sortedSites(waiting) {
		s.send(site, wire.CommitQuery{TxnVT: vt, From: s.id})
	}
}

// decideOrphan settles one orphaned transaction with an explicit,
// WAL-logged outcome (the record makes crash recovery uniform: replay
// sees the decision like any other).
func (s *Site) decideOrphan(vt vtime.VT, committed bool) {
	delete(s.commitQueries, vt)
	out := wire.Outcome{TxnVT: vt, Committed: committed}
	s.walLogOutcome(out)
	s.handleOutcome(out)
}

// maybeFinishCommitQuery completes a query whose waiting set shrank:
// commit if any survivor saw a COMMIT, abort once no survivor is left
// to ask.
func (s *Site) maybeFinishCommitQuery(vt vtime.VT, q *queryState) {
	if q.committed {
		s.decideOrphan(vt, true)
		return
	}
	if len(q.waiting) == 0 {
		s.decideOrphan(vt, false)
	}
}

// handleCommitQuery answers with this site's knowledge of the outcome.
func (s *Site) handleCommitQuery(from vtime.SiteID, m wire.CommitQuery) {
	committed, known := s.outcomes[m.TxnVT]
	s.send(from, wire.CommitQueryReply{TxnVT: m.TxnVT, From: s.id, Known: known, Committed: committed})
}

// handleCommitQueryReply collects survivor knowledge; when every survivor
// answered, the transaction commits if anyone saw a COMMIT, else aborts.
func (s *Site) handleCommitQueryReply(m wire.CommitQueryReply) {
	q, ok := s.commitQueries[m.TxnVT]
	if !ok {
		return
	}
	delete(q.waiting, m.From)
	if m.Known && !m.Committed {
		// A known abort decides immediately.
		s.decideOrphan(m.TxnVT, false)
		return
	}
	if m.Known && m.Committed {
		q.committed = true
	}
	s.maybeFinishCommitQuery(m.TxnVT, q)
}

// repairGraphsFor drops the failed site from every affected local
// replication graph, via a normal primary-coordinated transaction or via
// survivor consensus when the primary itself failed.
func (s *Site) repairGraphsFor(f vtime.SiteID) {
	needConsensus := false
	var consensusSites map[vtime.SiteID]bool
	for _, id := range sortedObjectIDs(s.objects) {
		o := s.objects[id]
		if o.graph == nil || len(o.graph.RemoveSiteDryRun(f)) == 0 {
			continue
		}
		primarySite, ok := o.graph.PrimarySite()
		if !ok {
			continue
		}
		if primarySite == f {
			needConsensus = true
			if consensusSites == nil {
				consensusSites = map[vtime.SiteID]bool{}
			}
			// Member set: the PRE-FAILURE graph membership minus the
			// failed site, deliberately NOT filtered by s.failed. Local
			// suspicions diverge across survivors; the member set (and
			// with it the quorum) must not.
			for _, site := range o.graph.Sites() {
				if site != f {
					consensusSites[site] = true
				}
			}
			continue
		}
		if primarySite == s.id {
			// This site hosts the surviving primary: coordinate an
			// ordinary timestamped graph-update transaction.
			obj := o
			repaired := obj.graph.Clone()
			repaired.RemoveSiteContract(f)
			repaired = repaired.Component(obj.id)
			// Engine-initiated, so it bypasses Submit: counted on its
			// own counter to keep the quiescent accounting identity
			// (Submitted + InternalTxns balance against decisions).
			s.stats.InternalTxns.Add(1)
			s.execute(&Txn{
				Name: "graph-repair",
				Execute: func(tx *Tx) error {
					tx.writeGraphUpdate(obj, repaired)
					return nil
				},
			}, newHandle(), 0)
		}
	}
	if !needConsensus {
		return
	}
	s.startConsensusRepair(f, sortedSites(consensusSites))
}

// RemoveSiteDryRun is declared in repgraph; see graph_dryrun.go for the
// engine-side helper.

// startConsensusRepair creates the consensus instance for repairing f's
// graphs (idempotent). The lowest live member proposes immediately;
// everyone else arms a rank-staggered takeover timer so a dead or
// stalled proposer cannot wedge the repair.
func (s *Site) startConsensusRepair(f vtime.SiteID, members []vtime.SiteID) {
	if _, done := s.repairDecided[f]; done {
		return
	}
	if s.repairs[f] != nil {
		return
	}
	rs := &repairState{
		failed:      f,
		inst:        consensus.New[wire.RepairValue](s.id, members),
		commitKnown: map[vtime.VT]bool{},
	}
	for _, vt := range s.knownCommitsFor(f) {
		rs.commitKnown[vt] = true
	}
	s.repairs[f] = rs
	s.log.Debug("repair instance", "failed", f.String(), "members", fmt.Sprint(rs.inst.Members()), "quorum", rs.inst.Quorum())
	if s.lowestLiveMember(rs.inst.Members()) == s.id {
		s.repairPropose(rs)
		return
	}
	s.armRepairTimer(rs, s.repairTakeoverDelayFor(rs))
}

// ensureRepair returns the repair instance for f, instantiating an
// acceptor from a message's member list when this site has not yet run
// its own failure handling for f. The takeover timer is armed so even a
// pure acceptor eventually drives the repair if the proposer dies.
func (s *Site) ensureRepair(f vtime.SiteID, members []vtime.SiteID) *repairState {
	if rs := s.repairs[f]; rs != nil {
		return rs
	}
	rs := &repairState{
		failed:      f,
		inst:        consensus.New[wire.RepairValue](s.id, members),
		commitKnown: map[vtime.VT]bool{},
	}
	for _, vt := range s.knownCommitsFor(f) {
		rs.commitKnown[vt] = true
	}
	s.repairs[f] = rs
	s.armRepairTimer(rs, s.repairTakeoverDelayFor(rs))
	return rs
}

// knownCommitsFor lists (VT-sorted) the committed outcomes this site
// knows for transactions originated at f.
func (s *Site) knownCommitsFor(f vtime.SiteID) []vtime.VT {
	var known []vtime.VT
	for _, vt := range sortedVTs(s.outcomes) {
		if s.outcomes[vt] && vt.Site == f {
			known = append(known, vt)
		}
	}
	return known
}

// lowestLiveMember returns the first member this site does not suspect
// failed (0 if none) — the member expected to propose first.
func (s *Site) lowestLiveMember(members []vtime.SiteID) vtime.SiteID {
	for _, m := range members {
		if !s.failed[m] {
			return m
		}
	}
	return 0
}

// repairRank is this site's index in the (sorted) member set.
func (s *Site) repairRank(rs *repairState) int {
	for i, m := range rs.inst.Members() {
		if m == s.id {
			return i
		}
	}
	return len(rs.inst.Members())
}

// repairTakeoverDelayFor staggers takeover by member rank: lower-ranked
// survivors move first, so concurrent takeovers (and the ballot duels
// they cause) only happen when the schedule actually separates members.
func (s *Site) repairTakeoverDelayFor(rs *repairState) time.Duration {
	return repairTakeoverDelay * time.Duration(1+s.repairRank(rs))
}

// repairRetryDelayFor backs a proposer off after a stalled or preempted
// attempt, scaled by both attempt count and rank so two survivors that
// each believe they lead eventually desynchronize.
func (s *Site) repairRetryDelayFor(rs *repairState) time.Duration {
	return repairRetryDelay * time.Duration(1+rs.attempts) * time.Duration(1+s.repairRank(rs))
}

// armRepairTimer (re)arms the retry/takeover timer. The callback posts
// into the event loop and no-ops if the repair instance was replaced or
// decided in the meantime.
func (s *Site) armRepairTimer(rs *repairState, d time.Duration) {
	if rs.cancelTimer != nil {
		rs.cancelTimer()
		rs.cancelTimer = nil
	}
	if s.repairs[rs.failed] != rs {
		return
	}
	if _, done := rs.inst.Decided(); done {
		return
	}
	f := rs.failed
	rs.cancelTimer = s.opts.Scheduler.AfterFunc(d, func() {
		s.do(func() { s.repairTimerFired(f, rs) })
	})
}

// repairTimerFired drives a repair that has not decided: take over (or
// retry) with a fresh, higher ballot.
func (s *Site) repairTimerFired(f vtime.SiteID, rs *repairState) {
	if s.repairs[f] != rs {
		return
	}
	if _, done := rs.inst.Decided(); done {
		return
	}
	rs.attempts++
	if rs.inst.Proposing() {
		// Our own attempt stalled: some member never answered (lost
		// message, or dead and not yet suspected locally).
		s.stats.RepairQuorumFailures.Inc()
	}
	s.repairPropose(rs)
}

// repairPropose starts (or restarts) a proposal attempt for rs at a
// ballot above everything observed, and re-arms the retry timer.
func (s *Site) repairPropose(rs *repairState) {
	rs.acceptSent = false
	if rs.cancelGrace != nil {
		rs.cancelGrace()
		rs.cancelGrace = nil
	}
	s.stats.RepairBallots.Inc()
	sends := rs.inst.Propose()
	if sends == nil {
		return // already decided
	}
	s.log.Debug("repair propose", "failed", rs.failed.String(), "ballot", rs.inst.Ballot().String())
	for _, sd := range sends {
		s.sendRepairMsg(rs, sd.To, sd.Msg)
	}
	// Self-loopback sends above re-enter the handlers synchronously and
	// may already have decided a single-member instance.
	s.armRepairTimer(rs, s.repairRetryDelayFor(rs))
}

// sendRepairMsg translates one kernel message into its wire form and
// sends it. Promise grants piggyback this site's known COMMIT outcomes
// for the failed site's in-flight transactions; Prepare and Accept carry
// the member set so receivers can instantiate identical acceptors.
func (s *Site) sendRepairMsg(rs *repairState, to vtime.SiteID, m consensus.Msg[wire.RepairValue]) {
	f := rs.failed
	switch m.Kind {
	case consensus.Prepare:
		s.send(to, wire.RepairPrepare{FailedSite: f, From: s.id, Ballot: m.Ballot, Members: rs.inst.Members()})
	case consensus.Promise:
		s.send(to, wire.RepairPromise{
			FailedSite:     f,
			From:           s.id,
			Ballot:         m.Ballot,
			OK:             m.OK,
			Promised:       m.Promised,
			HasAccepted:    m.HasAccepted,
			AcceptedBallot: m.AcceptedBallot,
			Accepted:       m.Value,
			KnownCommitted: s.knownCommitsFor(f),
		})
	case consensus.Accept:
		s.send(to, wire.RepairAccept{FailedSite: f, From: s.id, Ballot: m.Ballot, Value: m.Value, Members: rs.inst.Members()})
	case consensus.Accepted:
		s.send(to, wire.RepairAccepted{FailedSite: f, From: s.id, Ballot: m.Ballot, OK: m.OK, Promised: m.Promised})
	case consensus.Learn:
		s.send(to, wire.RepairLearn{FailedSite: f, From: s.id, Ballot: m.Ballot, Value: m.Value})
	}
}

// stepRepair applies one kernel step: send its messages, then react to
// the state transition it reports.
func (s *Site) stepRepair(rs *repairState, st consensus.Step[wire.RepairValue]) {
	for _, sd := range st.Sends {
		s.sendRepairMsg(rs, sd.To, sd.Msg)
	}
	if st.Decided {
		s.finishRepair(rs)
		return
	}
	if st.Preempted {
		// A member is promised to a higher ballot: another survivor took
		// over. Back off and retry in case the new leader also dies.
		s.stats.RepairQuorumFailures.Inc()
		rs.acceptSent = false
		if rs.cancelGrace != nil {
			rs.cancelGrace()
			rs.cancelGrace = nil
		}
		rs.attempts++
		s.armRepairTimer(rs, s.repairRetryDelayFor(rs))
		return
	}
	if st.PromiseQuorum {
		if s.allLivePromised(rs) {
			s.repairAccept(rs)
			return
		}
		// Quorum reached but stragglers remain: give their promises (and
		// the commit knowledge piggybacked on them) a short grace.
		s.armRepairGrace(rs)
	}
}

// allLivePromised reports whether every member this site believes alive
// has promised the current attempt.
func (s *Site) allLivePromised(rs *repairState) bool {
	for _, m := range rs.inst.Members() {
		if !s.failed[m] && !rs.inst.Promised(m) {
			return false
		}
	}
	return true
}

// armRepairGrace arms the phase-2 grace timer (once per attempt).
func (s *Site) armRepairGrace(rs *repairState) {
	if rs.cancelGrace != nil {
		return
	}
	f := rs.failed
	rs.cancelGrace = s.opts.Scheduler.AfterFunc(repairGraceDelay, func() {
		s.do(func() {
			if s.repairs[f] != rs {
				return
			}
			rs.cancelGrace = nil
			s.repairAccept(rs)
		})
	})
}

// repairAccept moves the current attempt to phase 2 with this site's
// proposal: drop f, keep the live members, commit exactly the union of
// COMMIT outcomes gathered from the promise quorum. If a promise carried
// a previously accepted value, the kernel adopts that instead (Paxos
// safety — a possibly chosen value is never overwritten).
func (s *Site) repairAccept(rs *repairState) {
	if rs.acceptSent {
		return
	}
	if _, done := rs.inst.Decided(); done {
		return
	}
	if s.repairs[rs.failed] != rs {
		return
	}
	var live []vtime.SiteID
	for _, m := range rs.inst.Members() {
		if !s.failed[m] {
			live = append(live, m)
		}
	}
	v := wire.RepairValue{
		FailedSite: rs.failed,
		GraphVT:    s.clock.Next(),
		Survivors:  live,
		Commit:     sortedVTs(rs.commitKnown),
	}
	sends := rs.inst.AcceptValue(v)
	if sends == nil {
		return
	}
	rs.acceptSent = true
	if rs.cancelGrace != nil {
		rs.cancelGrace()
		rs.cancelGrace = nil
	}
	for _, sd := range sends {
		s.sendRepairMsg(rs, sd.To, sd.Msg)
	}
}

// handleRepairPrepare is consensus phase 1a at an acceptor.
func (s *Site) handleRepairPrepare(m wire.RepairPrepare) {
	if v, ok := s.repairDecided[m.FailedSite]; ok {
		// Already decided here: short-circuit the late proposer.
		s.send(m.From, wire.RepairLearn{FailedSite: m.FailedSite, From: s.id, Value: v})
		return
	}
	rs := s.ensureRepair(m.FailedSite, m.Members)
	s.stepRepair(rs, rs.inst.Handle(m.From, consensus.Msg[wire.RepairValue]{
		Kind:   consensus.Prepare,
		Ballot: m.Ballot,
	}))
}

// handleRepairPromise is consensus phase 1b at the proposer. The
// piggybacked KnownCommitted set is merged BEFORE the kernel step, so a
// quorum-completing promise's knowledge is already folded into the
// proposal built on the quorum edge.
func (s *Site) handleRepairPromise(m wire.RepairPromise) {
	rs := s.repairs[m.FailedSite]
	if rs == nil {
		return
	}
	for _, vt := range m.KnownCommitted {
		rs.commitKnown[vt] = true
	}
	s.stepRepair(rs, rs.inst.Handle(m.From, consensus.Msg[wire.RepairValue]{
		Kind:           consensus.Promise,
		Ballot:         m.Ballot,
		OK:             m.OK,
		Promised:       m.Promised,
		HasAccepted:    m.HasAccepted,
		AcceptedBallot: m.AcceptedBallot,
		Value:          m.Accepted,
	}))
	// A straggler promise after the quorum edge: once every live member
	// has promised there is nothing to wait for — cut the grace short.
	if s.repairs[m.FailedSite] == rs && rs.inst.Proposing() && !rs.acceptSent &&
		rs.inst.HasPromiseQuorum() && s.allLivePromised(rs) {
		s.repairAccept(rs)
	}
}

// handleRepairAccept is consensus phase 2a at an acceptor.
func (s *Site) handleRepairAccept(m wire.RepairAccept) {
	if v, ok := s.repairDecided[m.FailedSite]; ok {
		s.send(m.From, wire.RepairLearn{FailedSite: m.FailedSite, From: s.id, Value: v})
		return
	}
	rs := s.ensureRepair(m.FailedSite, m.Members)
	s.stepRepair(rs, rs.inst.Handle(m.From, consensus.Msg[wire.RepairValue]{
		Kind:   consensus.Accept,
		Ballot: m.Ballot,
		Value:  m.Value,
	}))
}

// handleRepairAccepted is consensus phase 2b at the proposer.
func (s *Site) handleRepairAccepted(m wire.RepairAccepted) {
	rs := s.repairs[m.FailedSite]
	if rs == nil {
		return
	}
	s.stepRepair(rs, rs.inst.Handle(m.From, consensus.Msg[wire.RepairValue]{
		Kind:     consensus.Accepted,
		Ballot:   m.Ballot,
		OK:       m.OK,
		Promised: m.Promised,
	}))
}

// handleRepairLearn installs a decided repair broadcast by whichever
// member first saw the phase-2 quorum.
func (s *Site) handleRepairLearn(m wire.RepairLearn) {
	if _, ok := s.repairDecided[m.FailedSite]; ok {
		return // duplicate
	}
	rs := s.repairs[m.FailedSite]
	if rs == nil {
		// No local instance (e.g. this site never noticed the failure):
		// adopt the decision directly.
		s.recordRepairDecision(m.Value)
		return
	}
	s.stepRepair(rs, rs.inst.Handle(m.From, consensus.Msg[wire.RepairValue]{
		Kind:   consensus.Learn,
		Ballot: m.Ballot,
		Value:  m.Value,
	}))
}

// finishRepair retires a decided instance and applies its decision.
func (s *Site) finishRepair(rs *repairState) {
	v, ok := rs.inst.Decided()
	if !ok {
		return
	}
	if s.repairs[rs.failed] == rs {
		delete(s.repairs, rs.failed)
	}
	rs.cancelTimers()
	s.recordRepairDecision(v)
}

// recordRepairDecision applies a repair decision exactly once.
func (s *Site) recordRepairDecision(v wire.RepairValue) {
	if _, ok := s.repairDecided[v.FailedSite]; ok {
		return
	}
	s.repairDecided[v.FailedSite] = v
	s.applyRepairDecision(v)
}

// applyRepairDecision executes a decided repair: log it durably, settle
// the failed originator's in-flight transactions (commit iff in the
// decided Commit set), install the repaired graphs at the common virtual
// time, resume parked retries, and cascade into repairs that the new
// graphs now make possible.
func (s *Site) applyRepairDecision(v wire.RepairValue) {
	f := v.FailedSite
	s.log.Debug("repair decided", "failed", f.String(), "graphVT", v.GraphVT.String(), "commits", len(v.Commit))
	s.clock.Observe(v.GraphVT)
	s.walLogRepair(v)

	inCommit := map[vtime.VT]bool{}
	for _, vt := range v.Commit {
		inCommit[vt] = true
	}
	// Decide conflicting in-flight transactions, each with an explicit
	// WAL-logged outcome so crash recovery replays the same decisions.
	for _, vt := range sortedVTs(s.txns) {
		if st := s.txns[vt]; st.status != txnApplied || vt.Site != f {
			continue
		}
		s.decideOrphan(vt, inCommit[vt])
	}
	s.installRepairedGraphs(v)
	s.unparkRetries()
	// Cascade: the repaired graphs may hand the primary role to another
	// already-failed site (the cascading-failure case). Re-run failure
	// handling for every other suspect so its repair — impossible while
	// this one was undecided — starts now. startConsensusRepair dedupes.
	for _, f2 := range sortedSites(s.failed) {
		if f2 != f {
			s.repairGraphsFor(f2)
		}
	}
}

// installRepairedGraphs installs the repaired replication graphs at the
// decision's common virtual time (also used by WAL replay).
func (s *Site) installRepairedGraphs(v wire.RepairValue) {
	for _, id := range sortedObjectIDs(s.objects) {
		o := s.objects[id]
		if o.graph == nil || len(o.graph.RemoveSiteDryRun(v.FailedSite)) == 0 {
			continue
		}
		if ps, ok := o.graph.PrimarySite(); !ok || ps != v.FailedSite {
			continue // repaired by its surviving primary, not by consensus
		}
		repaired := o.graph.Clone()
		repaired.RemoveSiteContract(v.FailedSite)
		repaired = repaired.Component(o.id)
		if err := o.graphHist.Insert(v.GraphVT, repaired, history.Committed); err == nil {
			o.graph = repaired
			o.graphVT = v.GraphVT
			s.log.Debug("repair installed", "obj", o.id.String(), "graph", repaired.String())
		} else {
			s.log.Debug("repair install failed", "obj", o.id.String(), "err", err.Error())
		}
	}
}

// ---------------------------------------------------------------------------
// Legacy epoch-based repair (wire compatibility with older peers).
// ---------------------------------------------------------------------------

// handleRepairPropose answers an old-protocol repair proposal with the
// outcomes this site knows for transactions involving the failed site.
func (s *Site) handleRepairPropose(m wire.RepairPropose) {
	s.log.Debug("legacy repair propose", "from", m.From.String(), "epoch", m.Epoch)
	if cur := s.legacyRepairs[m.FailedSite]; cur != nil &&
		(cur.epoch > m.Epoch || (cur.epoch == m.Epoch && cur.coordinator != m.From)) {
		// Stale epoch — or an equal-epoch proposal from a DIFFERENT
		// coordinator. Two sites with divergent failure suspicions can
		// each open epoch 1 believing they are the lowest survivor;
		// acking both would let two conflicting decisions commit.
		// First proposer wins the epoch; the loser retries higher.
		return
	}
	s.legacyRepairs[m.FailedSite] = &legacyRepairState{
		epoch:       m.Epoch,
		failed:      m.FailedSite,
		coordinator: m.From,
		graphVT:     m.GraphVT,
		survivors:   m.Survivors,
	}
	s.send(m.From, wire.RepairAck{
		EpochN:         m.Epoch,
		FailedSite:     m.FailedSite,
		From:           s.id,
		KnownCommitted: s.knownCommitsFor(m.FailedSite),
	})
}

// handleRepairAck gathers survivor knowledge for an old-protocol repair
// this site coordinates. The engine no longer initiates legacy repairs,
// so in practice this only fires for states restored from older peers.
func (s *Site) handleRepairAck(m wire.RepairAck) {
	rs := s.legacyRepairs[m.FailedSite]
	if rs == nil || rs.coordinator != s.id || rs.epoch != m.EpochN {
		return
	}
	if rs.acks == nil {
		rs.acks = map[vtime.SiteID]bool{}
	}
	if rs.commitSet == nil {
		rs.commitSet = map[vtime.VT]bool{}
	}
	rs.acks[m.From] = true
	for _, vt := range m.KnownCommitted {
		rs.commitSet[vt] = true
	}
	for _, site := range rs.survivors {
		if !rs.acks[site] && !s.failed[site] {
			return // still waiting
		}
	}
	commit := sortedVTs(rs.commitSet)
	for _, site := range rs.survivors {
		s.send(site, wire.RepairDecide{
			EpochN:     rs.epoch,
			FailedSite: rs.failed,
			From:       s.id,
			GraphVT:    rs.graphVT,
			Commit:     commit,
		})
	}
}

// handleRepairDecide applies an old-protocol repair decision. It settles
// the repair exactly like a consensus decision, cancelling any racing
// local instance.
func (s *Site) handleRepairDecide(m wire.RepairDecide) {
	s.log.Debug("legacy repair decide", "from", m.From.String())
	if cur := s.legacyRepairs[m.FailedSite]; cur != nil && cur.epoch > m.EpochN {
		return
	}
	delete(s.legacyRepairs, m.FailedSite)
	if rs, ok := s.repairs[m.FailedSite]; ok {
		rs.cancelTimers()
		delete(s.repairs, m.FailedSite)
	}
	s.recordRepairDecision(wire.RepairValue{
		FailedSite: m.FailedSite,
		GraphVT:    m.GraphVT,
		Commit:     m.Commit,
	})
}

// writeGraphUpdate records a replication-graph update inside a
// transaction (surviving-primary repair, paper §3.4).
func (tx *Tx) writeGraphUpdate(o *object, ng *repgraph.Graph) {
	// The update must reach the members of the graph as it stood before
	// this change (e.g. the site being left), so the targets are
	// captured now.
	tx.writeGraphUpdateTargets(o, ng, o.replicationRoot().graph.Clone())
}

// writeGraphUpdateTargets is writeGraphUpdate with an explicit target set
// (a direct-propagation refresh must reach both the old members and the
// newly collected counterparts).
func (tx *Tx) writeGraphUpdateTargets(o *object, ng, targets *repgraph.Graph) {
	op := wire.OpGraph{Graph: ng.ToWire()}
	root := o.replicationRoot()
	// Both the addressing path and the graph times are captured BEFORE
	// the local apply: adopting the new graph may change o's replication
	// root (a promotion), which would change what pathFromRoot computes.
	path := o.pathFromRoot()
	w := &writeRec{
		obj:          o,
		readVT:       root.graphVT,
		graphVT:      root.graphVT,
		ops:          []wire.Op{op},
		targetGraph:  targets,
		pathOverride: &path,
	}
	tx.st.writes = append(tx.st.writes, w)
	tx.s.applyOp(tx.st, o, nil, op, history.Pending)
	tx.st.hasGraphOp = true
}

// unparkRetries resubmits transactions parked on a failed primary.
func (s *Site) unparkRetries() {
	parked := s.parked
	s.parked = nil
	s.stats.ParkedRetries.Set(0)
	for _, p := range parked {
		p := p
		s.stats.Retries.Add(1)
		s.doOrDrop(
			func() { s.execute(p.txn, p.handle, p.retries) },
			func() {
				if p.handle != nil {
					p.handle.finish(Result{Err: ErrSiteStopped})
				}
			},
		)
	}
}
