package engine

import (
	"fmt"

	"decaf/internal/history"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Client-failure handling (paper §3.4). Failures are fail-stop: the
// transport notifies survivors and blocks further communication with the
// failed site. Three duties follow:
//
//  1. In-flight transactions whose ORIGINATING site failed are resolved by
//     querying the surviving sites: if any received a summary COMMIT the
//     transaction commits everywhere, else it aborts.
//  2. Transactions waiting on a failed PRIMARY site abort; they are
//     retried after the graph repair commits (the retry is parked).
//  3. Replication graphs drop the failed site's nodes. When the graph's
//     primary survives, it coordinates an ordinary timestamped graph
//     update. When the primary itself failed, the circularity (a primary
//     is a function of the graph, but committing the new graph needs a
//     primary) is broken by a consensus round among survivors, led by the
//     lowest surviving site.

// queryState tracks an outstanding commit-query for one orphaned
// transaction.
type queryState struct {
	st        *txnState
	waiting   map[vtime.SiteID]bool
	committed bool
}

// repairState tracks one in-flight graph repair (keyed by failed site).
type repairState struct {
	epoch       uint64
	failed      vtime.SiteID
	coordinator vtime.SiteID
	graphVT     vtime.VT
	survivors   []vtime.SiteID
	acks        map[vtime.SiteID]bool
	commitSet   map[vtime.VT]bool
}

// parkedRetry is a transaction retry deferred until graph repair.
type parkedRetry struct {
	txn     *Txn
	handle  *Handle
	retries int
}

// handleSiteFailure reacts to a fail-stop notification.
func (s *Site) handleSiteFailure(f vtime.SiteID) {
	if s.failed[f] {
		return
	}
	s.failed[f] = true
	s.log.Info("site failed", "failed", f.String())

	// (1) Resolve in-flight transactions originated at the failed site.
	// Iteration is VT-sorted so the resulting message schedule is
	// deterministic (see order.go).
	for _, vt := range sortedVTs(s.txns) {
		if st := s.txns[vt]; st.origin == f && st.status == txnApplied {
			s.startCommitQuery(vt, st)
		}
	}
	// (2) Abort local transactions waiting on the failed site.
	for _, vt := range sortedVTs(s.txns) {
		st := s.txns[vt]
		if st.origin != s.id || st.status != txnWaiting {
			continue
		}
		if st.waitConfirms[f] || st.delegatedTo == f {
			st.parkOnAbort = true
			s.abortTxn(st, fmt.Sprintf("primary site %s failed", f))
		}
	}
	// (3) Repair replication graphs containing the failed site.
	s.repairGraphsFor(f)
}

// handleSiteRecovered reacts to the transport re-establishing contact
// with a previously suspected site: the engine stops treating it as
// dead so traffic flows again. Any §3.4 failover already performed
// (aborts, graph repair) stands — the recovered site must rejoin
// objects it was repaired out of, exactly like a restarted site.
func (s *Site) handleSiteRecovered(f vtime.SiteID) {
	if !s.failed[f] {
		return
	}
	delete(s.failed, f)
	s.log.Info("site recovered", "site", f.String())
}

// startCommitQuery polls survivors for knowledge of an orphaned
// transaction's outcome.
func (s *Site) startCommitQuery(vt vtime.VT, st *txnState) {
	// Survivors: every site hosting a replica of an object this
	// transaction updated here.
	waiting := map[vtime.SiteID]bool{}
	for _, o := range st.appliedObjects() {
		g, _ := o.currentGraph()
		if g == nil {
			continue
		}
		for _, site := range g.Sites() {
			if site != s.id && !s.failed[site] {
				waiting[site] = true
			}
		}
	}
	if len(waiting) == 0 {
		// No one else to ask: no COMMIT can exist (the origin died
		// before distributing one we'd have seen); abort.
		s.handleOutcome(wire.Outcome{TxnVT: vt, Committed: false})
		return
	}
	s.commitQueries[vt] = &queryState{st: st, waiting: waiting}
	for _, site := range sortedSites(waiting) {
		s.send(site, wire.CommitQuery{TxnVT: vt, From: s.id})
	}
}

// handleCommitQuery answers with this site's knowledge of the outcome.
func (s *Site) handleCommitQuery(from vtime.SiteID, m wire.CommitQuery) {
	committed, known := s.outcomes[m.TxnVT]
	s.send(from, wire.CommitQueryReply{TxnVT: m.TxnVT, From: s.id, Known: known, Committed: committed})
}

// handleCommitQueryReply collects survivor knowledge; when every survivor
// answered, the transaction commits if anyone saw a COMMIT, else aborts.
func (s *Site) handleCommitQueryReply(m wire.CommitQueryReply) {
	q, ok := s.commitQueries[m.TxnVT]
	if !ok {
		return
	}
	delete(q.waiting, m.From)
	if m.Known && m.Committed {
		q.committed = true
	}
	if m.Known && !m.Committed {
		// A known abort decides immediately.
		delete(s.commitQueries, m.TxnVT)
		s.handleOutcome(wire.Outcome{TxnVT: m.TxnVT, Committed: false})
		return
	}
	if q.committed {
		delete(s.commitQueries, m.TxnVT)
		s.handleOutcome(wire.Outcome{TxnVT: m.TxnVT, Committed: true})
		return
	}
	if len(q.waiting) == 0 {
		delete(s.commitQueries, m.TxnVT)
		s.handleOutcome(wire.Outcome{TxnVT: m.TxnVT, Committed: false})
	}
}

// repairGraphsFor drops the failed site from every affected local
// replication graph, via a normal primary-coordinated transaction or via
// survivor consensus when the primary itself failed.
func (s *Site) repairGraphsFor(f vtime.SiteID) {
	needConsensus := false
	var consensusSites map[vtime.SiteID]bool
	for _, id := range sortedObjectIDs(s.objects) {
		o := s.objects[id]
		if o.graph == nil || len(o.graph.RemoveSiteDryRun(f)) == 0 {
			continue
		}
		primarySite, ok := o.graph.PrimarySite()
		if !ok {
			continue
		}
		if primarySite == f {
			needConsensus = true
			if consensusSites == nil {
				consensusSites = map[vtime.SiteID]bool{}
			}
			for _, site := range o.graph.Sites() {
				if site != f && !s.failed[site] {
					consensusSites[site] = true
				}
			}
			continue
		}
		if primarySite == s.id {
			// This site hosts the surviving primary: coordinate an
			// ordinary timestamped graph-update transaction.
			obj := o
			repaired := obj.graph.Clone()
			repaired.RemoveSiteContract(f)
			repaired = repaired.Component(obj.id)
			// Engine-initiated, so it bypasses Submit: counted on its
			// own counter to keep the quiescent accounting identity
			// (Submitted + InternalTxns balance against decisions).
			s.stats.InternalTxns.Add(1)
			s.execute(&Txn{
				Name: "graph-repair",
				Execute: func(tx *Tx) error {
					tx.writeGraphUpdate(obj, repaired)
					return nil
				},
			}, newHandle(), 0)
		}
	}
	if !needConsensus {
		return
	}
	// Consensus repair: the lowest surviving site coordinates.
	sites := sortedSites(consensusSites)
	if len(sites) == 0 || sites[0] != s.id {
		return // another survivor coordinates
	}
	s.startRepair(f, sites)
}

// RemoveSiteDryRun is declared in repgraph; see graph_dryrun.go for the
// engine-side helper.

// startRepair begins (or restarts) the survivor consensus for graphs
// whose primary site failed.
func (s *Site) startRepair(f vtime.SiteID, survivors []vtime.SiteID) {
	prev := s.repairs[f]
	epoch := uint64(1)
	if prev != nil {
		epoch = prev.epoch + 1
	}
	rs := &repairState{
		epoch:       epoch,
		failed:      f,
		coordinator: s.id,
		graphVT:     s.clock.Next(),
		survivors:   survivors,
		acks:        map[vtime.SiteID]bool{},
		commitSet:   map[vtime.VT]bool{},
	}
	s.repairs[f] = rs
	s.log.Debug("startRepair", "failed", f.String(), "epoch", epoch, "survivors", fmt.Sprint(survivors))
	for _, site := range survivors {
		s.send(site, wire.RepairPropose{
			Epoch:      epoch,
			FailedSite: f,
			From:       s.id,
			GraphVT:    rs.graphVT,
			Survivors:  survivors,
		})
	}
}

// handleRepairPropose answers a repair proposal with the outcomes this
// site knows for transactions involving the failed site.
func (s *Site) handleRepairPropose(m wire.RepairPropose) {
	s.log.Debug("repair propose", "from", m.From.String(), "epoch", m.Epoch)
	if cur := s.repairs[m.FailedSite]; cur != nil && cur.epoch > m.Epoch {
		return // stale epoch
	}
	if s.repairs[m.FailedSite] == nil || s.repairs[m.FailedSite].coordinator != s.id {
		s.repairs[m.FailedSite] = &repairState{
			epoch:       m.Epoch,
			failed:      m.FailedSite,
			coordinator: m.From,
			graphVT:     m.GraphVT,
			survivors:   m.Survivors,
		}
	}
	var known []vtime.VT
	for _, vt := range sortedVTs(s.outcomes) {
		if s.outcomes[vt] && vt.Site == m.FailedSite {
			known = append(known, vt)
		}
	}
	s.send(m.From, wire.RepairAck{
		EpochN:         m.Epoch,
		FailedSite:     m.FailedSite,
		From:           s.id,
		KnownCommitted: known,
	})
}

// handleRepairAck (coordinator side) gathers survivor knowledge and
// decides once everyone answered.
func (s *Site) handleRepairAck(m wire.RepairAck) {
	s.log.Debug("repair ack", "from", m.From.String())
	rs := s.repairs[m.FailedSite]
	if rs == nil || rs.coordinator != s.id || rs.epoch != m.EpochN {
		return
	}
	rs.acks[m.From] = true
	for _, vt := range m.KnownCommitted {
		rs.commitSet[vt] = true
	}
	for _, site := range rs.survivors {
		if !rs.acks[site] && !s.failed[site] {
			return // still waiting
		}
	}
	commit := sortedVTs(rs.commitSet)
	for _, site := range rs.survivors {
		s.send(site, wire.RepairDecide{
			EpochN:     rs.epoch,
			FailedSite: rs.failed,
			From:       s.id,
			GraphVT:    rs.graphVT,
			Commit:     commit,
		})
	}
}

// handleRepairDecide applies the consensus: commit the listed
// transactions, abort every other in-flight transaction involving the
// failed site, and install the repaired graphs at the common VT.
func (s *Site) handleRepairDecide(m wire.RepairDecide) {
	s.log.Debug("repair decide", "from", m.From.String())
	rs := s.repairs[m.FailedSite]
	if rs != nil && rs.epoch > m.EpochN {
		return
	}
	delete(s.repairs, m.FailedSite)
	s.clock.Observe(m.GraphVT)

	inCommit := map[vtime.VT]bool{}
	for _, vt := range m.Commit {
		inCommit[vt] = true
	}
	// Decide conflicting in-flight transactions.
	for _, vt := range sortedVTs(s.txns) {
		if st := s.txns[vt]; st.status != txnApplied || vt.Site != m.FailedSite {
			continue
		}
		delete(s.commitQueries, vt)
		s.handleOutcome(wire.Outcome{TxnVT: vt, Committed: inCommit[vt]})
	}
	// Install repaired graphs at the common virtual time.
	for _, id := range sortedObjectIDs(s.objects) {
		o := s.objects[id]
		if o.graph == nil || len(o.graph.RemoveSiteDryRun(m.FailedSite)) == 0 {
			continue
		}
		if ps, ok := o.graph.PrimarySite(); !ok || ps != m.FailedSite {
			continue // repaired by its surviving primary, not by consensus
		}
		repaired := o.graph.Clone()
		repaired.RemoveSiteContract(m.FailedSite)
		repaired = repaired.Component(o.id)
		if err := o.graphHist.Insert(m.GraphVT, repaired, history.Committed); err == nil {
			o.graph = repaired
			o.graphVT = m.GraphVT
			s.log.Debug("repair installed", "obj", o.id.String(), "graph", repaired.String())
		} else {
			s.log.Debug("repair install failed", "obj", o.id.String(), "err", err.Error())
		}
	}
	s.unparkRetries()
}

// writeGraphUpdate records a replication-graph update inside a
// transaction (surviving-primary repair, paper §3.4).
func (tx *Tx) writeGraphUpdate(o *object, ng *repgraph.Graph) {
	// The update must reach the members of the graph as it stood before
	// this change (e.g. the site being left), so the targets are
	// captured now.
	tx.writeGraphUpdateTargets(o, ng, o.replicationRoot().graph.Clone())
}

// writeGraphUpdateTargets is writeGraphUpdate with an explicit target set
// (a direct-propagation refresh must reach both the old members and the
// newly collected counterparts).
func (tx *Tx) writeGraphUpdateTargets(o *object, ng, targets *repgraph.Graph) {
	op := wire.OpGraph{Graph: ng.ToWire()}
	root := o.replicationRoot()
	// Both the addressing path and the graph times are captured BEFORE
	// the local apply: adopting the new graph may change o's replication
	// root (a promotion), which would change what pathFromRoot computes.
	path := o.pathFromRoot()
	w := &writeRec{
		obj:          o,
		readVT:       root.graphVT,
		graphVT:      root.graphVT,
		ops:          []wire.Op{op},
		targetGraph:  targets,
		pathOverride: &path,
	}
	tx.st.writes = append(tx.st.writes, w)
	tx.s.applyOp(tx.st, o, nil, op, history.Pending)
	tx.st.hasGraphOp = true
}

// unparkRetries resubmits transactions parked on a failed primary.
func (s *Site) unparkRetries() {
	parked := s.parked
	s.parked = nil
	for _, p := range parked {
		p := p
		s.stats.Retries.Add(1)
		s.doOrDrop(
			func() { s.execute(p.txn, p.handle, p.retries) },
			func() {
				if p.handle != nil {
					p.handle.finish(Result{Err: ErrSiteStopped})
				}
			},
		)
	}
}
