package engine

import (
	"fmt"

	"decaf/internal/history"
	"decaf/internal/wire"
)

// Composite model-object operations on the transaction context
// (paper §2.1: lists are linearly indexed sequences of children; tuples
// are collections of children indexed by a key; §3.2: updates inside
// composites propagate indirectly through the root's replication graph).

// ensureCompositeWrite returns (creating if needed) the write record that
// accumulates structural ops on comp within this transaction.
func (tx *Tx) ensureCompositeWrite(comp *object) *writeRec {
	if w := tx.findWrite(comp); w != nil {
		return w
	}
	readVT := tx.st.vt // blind structural write
	if r := tx.findRead(comp); r != nil {
		readVT = r.readVT
		r.absorbed = true
	}
	root := comp.replicationRoot()
	w := &writeRec{obj: comp, readVT: readVT, graphVT: root.graphVT}
	tx.st.writes = append(tx.st.writes, w)
	tx.recordPathDeps(comp)
	return w
}

// applyLocalOp applies a structural op at the originating site through the
// same machinery remote sites use, keeping behaviour identical everywhere.
func (tx *Tx) applyLocalOp(comp *object, op wire.Op) {
	tx.s.applyOp(tx.st, comp, nil, op, history.Pending)
}

// countInsertsBy returns how many list inserts this transaction already
// performed on lst (the element-tag ordinal).
func (tx *Tx) countInsertsBy(w *writeRec) uint32 {
	var n uint32
	for _, op := range w.ops {
		switch op.(type) {
		case wire.OpListInsert, wire.OpListInsertAfter:
			n++
		}
	}
	return n
}

// ListLen returns the number of live elements, recording a structural
// read.
func (tx *Tx) ListLen(ref ObjRef) (int, error) {
	l := ref.o
	if l == nil {
		return 0, ErrInvalidRef
	}
	if l.kind != KindList {
		return 0, fmt.Errorf("%w: ListLen on %s", ErrWrongKind, l.kind)
	}
	tx.recordRead(l)
	return len(l.visibleElems(l.latestVT(), false)), nil
}

// ListGet returns the child at index idx (over live elements), recording a
// structural read.
func (tx *Tx) ListGet(ref ObjRef, idx int) (ObjRef, error) {
	l := ref.o
	if l == nil {
		return ObjRef{}, ErrInvalidRef
	}
	if l.kind != KindList {
		return ObjRef{}, fmt.Errorf("%w: ListGet on %s", ErrWrongKind, l.kind)
	}
	tx.recordRead(l)
	vis := l.visibleElems(l.latestVT(), false)
	if idx < 0 || idx >= len(vis) {
		return ObjRef{}, fmt.Errorf("%w: index %d of %d", ErrNoSuchElement, idx, len(vis))
	}
	return ObjRef{o: l.elems[vis[idx]].child}, nil
}

// ListInsert embeds a new child at index idx (len(list) appends) and
// returns its ref. The element receives a VT tag making its path robust
// against concurrent reordering (paper §3.2.1).
func (tx *Tx) ListInsert(ref ObjRef, idx int, decl wire.ChildDecl) (ObjRef, error) {
	l := ref.o
	if l == nil {
		return ObjRef{}, ErrInvalidRef
	}
	if l.kind != KindList {
		return ObjRef{}, fmt.Errorf("%w: ListInsert on %s", ErrWrongKind, l.kind)
	}
	if err := validDecl(decl); err != nil {
		return ObjRef{}, err
	}
	w := tx.ensureCompositeWrite(l)
	vis := l.visibleElems(l.latestVT(), false)
	if idx < 0 || idx > len(vis) {
		return ObjRef{}, fmt.Errorf("%w: insert index %d of %d", ErrNoSuchElement, idx, len(vis))
	}
	var after wire.ElemTag
	if idx > 0 {
		after = l.elems[vis[idx-1]].tag
		// The insert is causally ordered after the element it follows:
		// if that element's inserting transaction is still pending, this
		// transaction must not commit unless it does (an RC guess on the
		// structural dependency, paper §3.2.1). Remote replicas block
		// the new element until the earlier one arrives.
		if v, ok := l.hist.Get(l.elems[vis[idx-1]].insertVT); ok && v.Status == history.Pending && v.VT != tx.st.vt {
			tx.st.rcDeps[v.VT] = true
		}
	}
	op := wire.OpListInsert{
		Tag:   wire.ElemTag{VT: tx.st.vt, N: tx.countInsertsBy(w)},
		Index: idx,
		Child: decl,
		After: after,
	}
	w.ops = append(w.ops, op)
	tx.applyLocalOp(l, op)
	_, le := l.findChildByTag(op.Tag)
	if le == nil {
		return ObjRef{}, fmt.Errorf("engine: insert did not materialize element %s", op.Tag)
	}
	return ObjRef{o: le.child}, nil
}

// ListTagAt returns the stable tag of the element at index idx, for use
// as the anchor of ListInsertAfter. It records a structural read.
func (tx *Tx) ListTagAt(ref ObjRef, idx int) (wire.ElemTag, error) {
	l := ref.o
	if l == nil {
		return wire.ElemTag{}, ErrInvalidRef
	}
	if l.kind != KindList {
		return wire.ElemTag{}, fmt.Errorf("%w: ListTagAt on %s", ErrWrongKind, l.kind)
	}
	tx.recordRead(l)
	vis := l.visibleElems(l.latestVT(), false)
	if idx < 0 || idx >= len(vis) {
		return wire.ElemTag{}, fmt.Errorf("%w: index %d of %d", ErrNoSuchElement, idx, len(vis))
	}
	return l.elems[vis[idx]].tag, nil
}

// ListInsertAfter embeds a new child directly after the element tagged
// `after` (the zero tag anchors at the head) and returns its ref. The
// position is stable — it names an element, not an index — so concurrent
// inserts at different sites interleave deterministically (RGA order:
// ties resolve by tag) instead of racing over shifting indices. This is
// the sanctioned op for concurrent editing, and the only list insert the
// commutative fast path accepts: unlike ListInsert it records no read and
// needs no index agreement.
func (tx *Tx) ListInsertAfter(ref ObjRef, after wire.ElemTag, decl wire.ChildDecl) (ObjRef, error) {
	l := ref.o
	if l == nil {
		return ObjRef{}, ErrInvalidRef
	}
	if l.kind != KindList {
		return ObjRef{}, fmt.Errorf("%w: ListInsertAfter on %s", ErrWrongKind, l.kind)
	}
	if err := validDecl(decl); err != nil {
		return ObjRef{}, err
	}
	if after != (wire.ElemTag{}) {
		_, ale := l.findChildByTag(after)
		if ale == nil {
			return ObjRef{}, fmt.Errorf("%w: no element tagged %s", ErrNoSuchElement, after)
		}
		// Causal dependency on a still-pending anchor routes this
		// transaction through the guessed path (RC guess, paper §3.2.1);
		// an anchor from committed state keeps it fast-path eligible.
		if v, ok := l.hist.Get(ale.insertVT); ok && v.Status == history.Pending && v.VT != tx.st.vt {
			tx.st.rcDeps[v.VT] = true
		}
	}
	w := tx.ensureCompositeWrite(l)
	op := wire.OpListInsertAfter{
		Tag:   wire.ElemTag{VT: tx.st.vt, N: tx.countInsertsBy(w)},
		Child: decl,
		After: after,
	}
	w.ops = append(w.ops, op)
	tx.applyLocalOp(l, op)
	_, le := l.findChildByTag(op.Tag)
	if le == nil {
		return ObjRef{}, fmt.Errorf("engine: insert did not materialize element %s", op.Tag)
	}
	return ObjRef{o: le.child}, nil
}

// ListAppend embeds a new child at the end of the list.
func (tx *Tx) ListAppend(ref ObjRef, decl wire.ChildDecl) (ObjRef, error) {
	l := ref.o
	if l == nil {
		return ObjRef{}, ErrInvalidRef
	}
	if l.kind != KindList {
		return ObjRef{}, fmt.Errorf("%w: ListAppend on %s", ErrWrongKind, l.kind)
	}
	tx.recordRead(l)
	return tx.ListInsert(ref, len(l.visibleElems(l.latestVT(), false)), decl)
}

// ListRemove removes the element at index idx.
func (tx *Tx) ListRemove(ref ObjRef, idx int) error {
	l := ref.o
	if l == nil {
		return ErrInvalidRef
	}
	if l.kind != KindList {
		return fmt.Errorf("%w: ListRemove on %s", ErrWrongKind, l.kind)
	}
	tx.recordRead(l)
	vis := l.visibleElems(l.latestVT(), false)
	if idx < 0 || idx >= len(vis) {
		return fmt.Errorf("%w: remove index %d of %d", ErrNoSuchElement, idx, len(vis))
	}
	w := tx.ensureCompositeWrite(l)
	op := wire.OpListRemove{Tag: l.elems[vis[idx]].tag}
	w.ops = append(w.ops, op)
	tx.applyLocalOp(l, op)
	return nil
}

// TupleGet returns the child under key, if present.
func (tx *Tx) TupleGet(ref ObjRef, key string) (ObjRef, bool, error) {
	t := ref.o
	if t == nil {
		return ObjRef{}, false, ErrInvalidRef
	}
	if t.kind != KindTuple {
		return ObjRef{}, false, fmt.Errorf("%w: TupleGet on %s", ErrWrongKind, t.kind)
	}
	tx.recordRead(t)
	_, ent := t.findEntry(key)
	if ent == nil {
		return ObjRef{}, false, nil
	}
	return ObjRef{o: ent.child}, true, nil
}

// TupleKeys returns the live keys, recording a structural read.
func (tx *Tx) TupleKeys(ref ObjRef) ([]string, error) {
	t := ref.o
	if t == nil {
		return nil, ErrInvalidRef
	}
	if t.kind != KindTuple {
		return nil, fmt.Errorf("%w: TupleKeys on %s", ErrWrongKind, t.kind)
	}
	tx.recordRead(t)
	idxs := t.visibleEntries(t.latestVT(), false)
	out := make([]string, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, t.entries[i].key)
	}
	return out, nil
}

// TupleSet embeds (or replaces) the child under key and returns its ref.
func (tx *Tx) TupleSet(ref ObjRef, key string, decl wire.ChildDecl) (ObjRef, error) {
	t := ref.o
	if t == nil {
		return ObjRef{}, ErrInvalidRef
	}
	if t.kind != KindTuple {
		return ObjRef{}, fmt.Errorf("%w: TupleSet on %s", ErrWrongKind, t.kind)
	}
	if err := validDecl(decl); err != nil {
		return ObjRef{}, err
	}
	w := tx.ensureCompositeWrite(t)
	op := wire.OpTupleSet{Key: key, Child: decl}
	w.ops = append(w.ops, op)
	tx.applyLocalOp(t, op)
	_, ent := t.findEntry(key)
	if ent == nil {
		return ObjRef{}, fmt.Errorf("engine: tuple set did not materialize key %q", key)
	}
	return ObjRef{o: ent.child}, nil
}

// TupleRemove removes the child under key.
func (tx *Tx) TupleRemove(ref ObjRef, key string) error {
	t := ref.o
	if t == nil {
		return ErrInvalidRef
	}
	if t.kind != KindTuple {
		return fmt.Errorf("%w: TupleRemove on %s", ErrWrongKind, t.kind)
	}
	tx.recordRead(t)
	_, ent := t.findEntry(key)
	if ent == nil {
		return fmt.Errorf("%w: key %q", ErrNoSuchElement, key)
	}
	w := tx.ensureCompositeWrite(t)
	// Of pins the exact entry being removed so a concurrent re-set of
	// the key at another site is not clobbered (add-wins).
	op := wire.OpTupleRemove{Key: key, Of: ent.insertVT}
	w.ops = append(w.ops, op)
	tx.applyLocalOp(t, op)
	return nil
}

// validDecl vets a child declaration.
func validDecl(decl wire.ChildDecl) error {
	switch decl.Kind {
	case KindInt, KindFloat, KindString, KindBool, KindList, KindTuple:
	default:
		return fmt.Errorf("%w: cannot embed %s", ErrWrongKind, decl.Kind)
	}
	if decl.Value != nil {
		return checkValueKind(decl.Kind, decl.Value)
	}
	return nil
}
