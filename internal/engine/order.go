package engine

import (
	"sort"

	"decaf/internal/ids"
	"decaf/internal/vtime"
)

// Deterministic iteration helpers. Go randomizes map iteration order,
// which is fine for state that only needs set semantics — but protocol
// fan-out (who gets which message first) feeds straight into the
// network schedule. Under the deterministic simulation harness the
// whole run must be a pure function of the seed, so every map-driven
// send loop iterates through one of these instead of ranging the map
// directly. The cost is one small sort per fan-out, off the per-message
// hot path.

// sortedSites returns the keys of a site-keyed map in ascending order.
func sortedSites[V any](m map[vtime.SiteID]V) []vtime.SiteID {
	out := make([]vtime.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedVTs returns the keys of a VT-keyed map in VT order.
func sortedVTs[V any](m map[vtime.VT]V) []vtime.VT {
	out := make([]vtime.VT, 0, len(m))
	for vt := range m {
		out = append(out, vt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// sortedObjectIDs returns the keys of an object-keyed map in ID order.
func sortedObjectIDs[V any](m map[ids.ObjectID]V) []ids.ObjectID {
	out := make([]ids.ObjectID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
