package engine

import (
	"decaf/internal/detorder"
	"decaf/internal/ids"
	"decaf/internal/vtime"
)

// Deterministic iteration helpers. Go randomizes map iteration order,
// which is fine for state that only needs set semantics — but protocol
// fan-out (who gets which message first) feeds straight into the
// network schedule. Under the deterministic simulation harness the
// whole run must be a pure function of the seed, so every map-driven
// send loop iterates through one of these instead of ranging the map
// directly. The cost is one small sort per fan-out, off the per-message
// hot path. These wrappers pin the engine's key types onto the generic
// helpers in internal/detorder (the maporder analyzer's sanctioned
// escape hatch).

// sortedSites returns the keys of a site-keyed map in ascending order.
func sortedSites[V any](m map[vtime.SiteID]V) []vtime.SiteID {
	return detorder.Sorted(m)
}

// sortedVTs returns the keys of a VT-keyed map in VT order.
func sortedVTs[V any](m map[vtime.VT]V) []vtime.VT {
	return detorder.SortedFunc(m, vtime.VT.Less)
}

// sortedObjectIDs returns the keys of an object-keyed map in ID order.
func sortedObjectIDs[V any](m map[ids.ObjectID]V) []ids.ObjectID {
	return detorder.SortedFunc(m, ids.ObjectID.Less)
}
