package engine

import (
	"sync/atomic"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/obs"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// ViewMode selects the notification protocol for an attached view
// (paper §2.5.1).
type ViewMode int

const (
	// Optimistic views are notified as soon as a transaction executes
	// locally, possibly before it commits; they may observe state that
	// is later rolled back, and receive a commit notification when their
	// latest snapshot is known committed.
	Optimistic ViewMode = iota + 1
	// Pessimistic views are notified only of committed snapshots, one
	// per committed update, in monotonic VT order.
	Pessimistic
)

// SnapshotData is the immutable state snapshot delivered to a view's
// update callback. It is safe to retain and read from any goroutine.
type SnapshotData struct {
	// TS is the snapshot's virtual time.
	TS vtime.VT
	// Values maps each attached object to its materialized value at TS
	// (scalars; []any for lists; map[string]any for tuples;
	// []wire.Relationship for associations).
	Values map[ids.ObjectID]any
	// Changed lists the attached objects whose value changed since the
	// view's previous notification (paper §2.5: incremental tracking).
	Changed []ids.ObjectID
	// Committed reports whether this snapshot contains only committed
	// state (always true for pessimistic views).
	Committed bool
}

// ViewFuncs are the user callbacks of a view object. Update corresponds to
// the paper's update() method; Commit (optional, optimistic views only)
// corresponds to commit().
type ViewFuncs struct {
	Update func(SnapshotData)
	Commit func()
}

// snapshot is the engine-internal snapshot object (paper §4: "For every
// view notification initiated, a snapshot object is created").
type snapshot struct {
	ts       vtime.VT
	gen      uint64
	values   map[ids.ObjectID]any
	versions map[*object]vtime.VT
	changed  []ids.ObjectID
	// pendingChecks counts outstanding remote RL confirmations.
	pendingChecks int
	// rcDeps are uncommitted transactions whose values the snapshot read.
	rcDeps map[vtime.VT]bool
	// confirmed is set when every guess has been confirmed.
	confirmed bool
	// notifiedCommit is set once the commit callback was delivered.
	notifiedCommit bool
	// transientWait marks a pessimistic snapshot awaiting an in-flight
	// transaction's outcome before its guesses can be confirmed.
	transientWait bool
	// checkEpoch invalidates stale confirm replies after a revision.
	checkEpoch uint64
	// wall is the Observer.NowNanos stamp of snapshot creation (0 with
	// timing disabled); notification latency is measured from it.
	wall int64
}

// viewProxy manages the snapshots of one attached view (paper §4: "All the
// snapshots associated with a particular user level view object are
// managed internally by a view proxy object").
type viewProxy struct {
	site     *Site
	mode     ViewMode
	fns      ViewFuncs
	attached []*object
	detached bool

	// gen orders optimistic snapshots; latestGen gates delivery so only
	// the newest queued notification reaches the user (lossy delivery,
	// paper §4.1). Accessed from the notifier goroutine, hence atomic.
	gen       uint64
	latestGen atomic.Uint64

	// Optimistic update deliveries coalesce: optPending always holds the
	// newest undelivered payload (written by the event loop, read by the
	// notifier), optQueued arms at most one delivery closure in the
	// notify queue, and optDelivered is the last generation actually
	// handed to the user. Keeping a single armed closure per view means
	// queue overflow can delay the latest snapshot but never lose it.
	optPending   atomic.Pointer[optPayload]
	optQueued    atomic.Bool
	optDelivered atomic.Uint64

	// cur is the single uncommitted optimistic snapshot (paper §4.1:
	// "An optimistic view proxy maintains at most one uncommitted
	// snapshot").
	cur *snapshot
	// lastVersions tracks the per-object state identity at the last
	// notification, for change lists and lost-update accounting.
	lastVersions map[*object]vtime.VT
	everNotified bool

	// snaps are the pessimistic proxy's uncommitted snapshots in VT
	// order; lastNotifiedVT is the paper's field of the same name.
	snaps          []*snapshot
	lastNotifiedVT vtime.VT
}

// ViewHandle identifies an attached view for later detachment.
type ViewHandle struct {
	s *Site
	p *viewProxy
}

// Detach removes the view; no further notifications are delivered.
func (h *ViewHandle) Detach() {
	if h == nil || h.s == nil {
		return
	}
	_ = h.s.call(func() {
		h.p.detached = true
		// Invalidate the generation gates so deliveries already queued
		// (or armed) in the notifier never reach the detached view.
		h.p.latestGen.Add(1)
		for _, o := range h.p.attached {
			for i, p := range o.proxies {
				if p == h.p {
					o.proxies = append(o.proxies[:i], o.proxies[i+1:]...)
					break
				}
			}
		}
	})
}

// AttachView attaches a view to the given model objects (paper §2.5:
// views attach locally). The view immediately receives an initial update
// notification carrying the current state.
func (s *Site) AttachView(refs []ObjRef, mode ViewMode, fns ViewFuncs) (*ViewHandle, error) {
	if fns.Update == nil {
		return nil, errInvalidView
	}
	p := &viewProxy{
		site:         s,
		mode:         mode,
		fns:          fns,
		lastVersions: map[*object]vtime.VT{},
	}
	err := s.call(func() {
		for _, r := range refs {
			if r.o == nil {
				continue
			}
			p.attached = append(p.attached, r.o)
			r.o.proxies = append(r.o.proxies, p)
		}
		switch mode {
		case Pessimistic:
			// Start from the latest committed state.
			ts := vtime.Zero
			for _, o := range p.attached {
				if v, ok := o.hist.CurrentCommitted(); ok {
					ts = ts.Max(v.VT)
				}
				ts = ts.Max(o.latestCommittedVT())
			}
			p.lastNotifiedVT = ts
			p.deliverPessimistic(p.buildSnapshot(ts, true, true))
		default:
			p.runOptimistic()
		}
	})
	if err != nil {
		return nil, err
	}
	return &ViewHandle{s: s, p: p}, nil
}

var errInvalidView = &viewError{"view requires an Update callback"}

type viewError struct{ msg string }

func (e *viewError) Error() string { return "engine: " + e.msg }

// ---------------------------------------------------------------------------
// Shared snapshot construction.
// ---------------------------------------------------------------------------

// stateTokenAt returns the VT identifying o's state at `at`: the maximum
// version VT at or below `at` across o and its descendants.
func (o *object) stateTokenAt(at vtime.VT, committedOnly bool) vtime.VT {
	tok := vtime.Zero
	o.forEachDescendant(func(d *object) {
		var v history.Version
		var ok bool
		if committedOnly {
			v, ok = d.hist.CommittedAt(at)
		} else {
			v, ok = d.hist.At(at)
		}
		if ok {
			tok = tok.Max(v.VT)
		}
	})
	return tok
}

// latestCommittedVT returns the newest committed version VT across o and
// its descendants.
func (o *object) latestCommittedVT() vtime.VT {
	tok := vtime.Zero
	o.forEachDescendant(func(d *object) {
		if v, ok := d.hist.CurrentCommitted(); ok {
			tok = tok.Max(v.VT)
		}
	})
	return tok
}

// collectPendingAt gathers the uncommitted transactions contributing to
// o's state at `at` (the snapshot's RC guesses).
func (o *object) collectPendingAt(at vtime.VT, into map[vtime.VT]bool) {
	o.forEachDescendant(func(d *object) {
		if v, ok := d.hist.At(at); ok && v.Status == history.Pending {
			into[v.VT] = true
		}
	})
}

// buildSnapshot materializes a snapshot of the proxy's attached objects at
// ts.
func (p *viewProxy) buildSnapshot(ts vtime.VT, committedOnly, markAllChanged bool) *snapshot {
	// A new snapshot can lower the GC floor below the batch cache.
	p.site.invalidateGCFloor()
	snap := &snapshot{
		ts:       ts,
		values:   make(map[ids.ObjectID]any, len(p.attached)),
		versions: make(map[*object]vtime.VT, len(p.attached)),
		rcDeps:   map[vtime.VT]bool{},
		wall:     p.site.obs.NowNanos(),
	}
	for _, o := range p.attached {
		snap.values[o.id] = o.readValue(ts, committedOnly)
		snap.versions[o] = o.stateTokenAt(ts, committedOnly)
		if !committedOnly {
			o.collectPendingAt(ts, snap.rcDeps)
		}
	}
	for _, o := range p.attached {
		if markAllChanged || snap.versions[o] != p.lastVersions[o] {
			snap.changed = append(snap.changed, o.id)
		}
	}
	return snap
}

// data converts a snapshot into its immutable user-facing form.
func (snap *snapshot) data(committed bool) SnapshotData {
	vals := make(map[ids.ObjectID]any, len(snap.values))
	for k, v := range snap.values {
		vals[k] = v
	}
	changed := make([]ids.ObjectID, len(snap.changed))
	copy(changed, snap.changed)
	return SnapshotData{TS: snap.ts, Values: vals, Changed: changed, Committed: committed}
}

// minSnapshotVT reports the lowest VT any of the proxy's live snapshots
// may still read (the GC floor contribution).
func (p *viewProxy) minSnapshotVT() (vtime.VT, bool) {
	min := vtime.VT{}
	found := false
	consider := func(v vtime.VT) {
		if !found || v.Less(min) {
			min, found = v, true
		}
	}
	if p.cur != nil && !p.cur.confirmed {
		consider(p.cur.ts)
	}
	for _, sn := range p.snaps {
		consider(sn.ts)
	}
	if p.mode == Pessimistic {
		consider(p.lastNotifiedVT)
	}
	return min, found
}

// ---------------------------------------------------------------------------
// Site-level scheduling hooks (called from the event loop).
// ---------------------------------------------------------------------------

// proxiesOf collects the distinct view proxies observing any of objs.
func proxiesOf(objs []*object, mode ViewMode) []*viewProxy {
	var out []*viewProxy
	seen := map[*viewProxy]bool{}
	for _, o := range objs {
		for _, p := range o.attachedProxies() {
			if p.mode == mode && !p.detached && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// scheduleOptimistic notifies optimistic proxies that attached objects
// changed (a local execution, a remote update, or a rollback).
func (s *Site) scheduleOptimistic(objs []*object) {
	for _, p := range proxiesOf(objs, Optimistic) {
		p.runOptimistic()
	}
}

// onLocalCommit reacts to a transaction's updates becoming committed at
// this site: pessimistic snapshots are created, optimistic transient
// states re-examined.
func (s *Site) onLocalCommit(objs []*object, vt vtime.VT) {
	for _, p := range proxiesOf(objs, Pessimistic) {
		p.onCommitted(vt)
	}
	for _, p := range proxiesOf(objs, Pessimistic) {
		p.retryPending()
	}
}

// onLocalAbort reacts to a rollback: optimistic proxies rerun their
// snapshot against the reverted state; pessimistic proxies retry guesses
// that were waiting on the aborted transaction.
func (s *Site) onLocalAbort(objs []*object) {
	for _, p := range proxiesOf(objs, Optimistic) {
		p.rerunAfterAbort()
	}
	for _, p := range proxiesOf(objs, Pessimistic) {
		p.retryPending()
	}
}

// ---------------------------------------------------------------------------
// Optimistic proxy (paper §4.1).
// ---------------------------------------------------------------------------

// runOptimistic creates and schedules a fresh optimistic snapshot at the
// greatest VT of the attached objects' current values.
func (p *viewProxy) runOptimistic() {
	if p.detached {
		return
	}
	ts := vtime.Zero
	for _, o := range p.attached {
		ts = ts.Max(o.latestVT())
	}
	snap := p.buildSnapshot(ts, false, !p.everNotified)

	if p.cur != nil && p.cur.ts == snap.ts && versionsEqual(p.cur.versions, snap.versions) {
		// The triggering update did not change the observed state: a
		// straggler older than the current snapshot — a lost update
		// (paper §5.1.2) — or a redundant trigger.
		if p.everNotified {
			p.site.stats.LostUpdates.Add(1)
		}
		return
	}
	if len(snap.changed) == 0 && p.everNotified {
		return
	}

	p.gen++
	snap.gen = p.gen
	p.cur = snap
	p.everNotified = true
	for o, v := range snap.versions {
		p.lastVersions[o] = v
	}
	p.latestGen.Store(snap.gen)

	s := p.site
	s.stats.OptNotifications.Add(1)
	s.trace(obs.EvOptNotify, snap.ts, 0, "")
	p.optPending.Store(&optPayload{gen: snap.gen, data: snap.data(false), wall: snap.wall})
	p.armOptDelivery()

	p.requestOptimisticGuesses(snap)
	p.checkOptimisticCommit(snap)
}

// optPayload is one optimistic update ready for delivery.
type optPayload struct {
	gen  uint64
	data SnapshotData
	wall int64
}

// armOptDelivery queues at most one delivery closure for this proxy.
// The closure reads optPending at delivery time, so payloads
// superseded while queued coalesce into the newest one (paper §4.1:
// "optimistic views are only notified of the latest update"). If the
// notify queue rejects the closure (overflow), the arm is released and
// the next trigger retries — backpressure delays the latest snapshot
// but cannot lose it.
func (p *viewProxy) armOptDelivery() {
	if !p.optQueued.CompareAndSwap(false, true) {
		return // a queued closure will pick up the new payload
	}
	s := p.site
	if s.notify(func() {
		p.optQueued.Store(false)
		d := p.optPending.Load()
		if d == nil || d.gen == p.optDelivered.Load() || p.latestGen.Load() != d.gen {
			return // already delivered, superseded mid-swap, or detached
		}
		p.optDelivered.Store(d.gen)
		s.obs.ObserveSince(s.stats.OptNotifyLatency, d.wall)
		p.fns.Update(d.data)
	}) {
		return
	}
	p.optQueued.Store(false)
}

// versionsEqual compares per-object state tokens.
func versionsEqual(a, b map[*object]vtime.VT) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// requestOptimisticGuesses registers the snapshot's RC and RL guesses
// (paper §4.1).
func (p *viewProxy) requestOptimisticGuesses(snap *snapshot) {
	s := p.site
	// RC guesses: wait for the outcomes of pending transactions whose
	// values the snapshot read.
	// VT-sorted: which dependencies are resolved (and in what order the
	// waiters fire) must not vary run to run, and the sorted key slice
	// also makes the delete-while-iterating below safe.
	for _, dep := range sortedVTs(snap.rcDeps) {
		if known, ok := s.outcomes[dep]; ok {
			if known {
				delete(snap.rcDeps, dep)
				continue
			}
			// Read an aborted value; a rollback rerun will follow.
			return
		}
		s.rcWaiters[dep] = append(s.rcWaiters[dep], func(committed bool) {
			if p.cur != snap || p.detached {
				return
			}
			if committed {
				delete(snap.rcDeps, dep)
				p.checkOptimisticCommit(snap)
			} else {
				// The snapshot exposed rolled-back state (an update
				// inconsistency); onLocalAbort triggers the rerun.
				s.stats.UpdateInconsistencies.Add(1)
			}
		})
	}
	// RL guesses: for each attached object read below ts, the interval
	// up to ts must be write-free at the object's primary copy.
	checksBySite := map[vtime.SiteID][]wire.ReadCheck{}
	for _, o := range p.attached {
		v := snap.versions[o]
		if !v.Less(snap.ts) {
			continue // read the value written at ts itself: no RL guess
		}
		root := o.replicationRoot()
		g := root.graph
		if g == nil || g.NumNodes() <= 1 {
			continue // unreplicated: local state is authoritative
		}
		primaryNode, _ := g.Primary()
		primarySite, _ := g.SiteOf(primaryNode)
		if primarySite == s.id {
			// Local primary: the current value is by construction the
			// latest. No reservation is made: optimistic views tolerate
			// stragglers (a superseding notification repairs them,
			// §4.1), so they must not abort writers.
			continue
		}
		checksBySite[primarySite] = append(checksBySite[primarySite], wire.ReadCheck{
			Target:    primaryNode,
			Path:      o.pathFromRoot(),
			ReadVT:    v,
			GraphVT:   root.graphVT,
			NoReserve: true,
		})
	}
	// Site-sorted: reqID assignment and the outbound message schedule
	// must be a pure function of protocol state.
	for _, site := range sortedSites(checksBySite) {
		checks := checksBySite[site]
		reqID := s.newReqID()
		snap.pendingChecks++
		s.confirmWaiters[reqID] = func(c wire.Confirm) {
			if p.cur != snap || p.detached {
				return
			}
			if c.OK {
				snap.pendingChecks--
				p.checkOptimisticCommit(snap)
			}
			// Denials need no action: the straggler (or its outcome)
			// will reach this site and trigger a superseding
			// notification (paper §4.1).
		}
		s.send(site, wire.ConfirmRead{TxnVT: snap.ts, Origin: s.id, ReqID: reqID, Checks: checks})
	}
}

// checkOptimisticCommit delivers the commit notification once every guess
// of the proxy's current snapshot is confirmed (paper §4.1).
func (p *viewProxy) checkOptimisticCommit(snap *snapshot) {
	if p.cur != snap || snap.notifiedCommit || p.detached {
		return
	}
	if snap.pendingChecks > 0 || len(snap.rcDeps) > 0 {
		return
	}
	snap.confirmed = true
	snap.notifiedCommit = true
	p.site.stats.OptCommits.Add(1)
	p.site.trace(obs.EvCommitNotify, snap.ts, 0, "")
	if p.fns.Commit == nil {
		return
	}
	gen := snap.gen
	p.site.notify(func() {
		if p.latestGen.Load() != gen {
			return // superseded before delivery
		}
		p.fns.Commit()
	})
}

// rerunAfterAbort recomputes the optimistic snapshot after a rollback
// reverted attached state (paper §4.1: rerun with a new tS).
func (p *viewProxy) rerunAfterAbort() {
	if p.cur == nil {
		p.runOptimistic()
		return
	}
	p.site.stats.SnapshotReruns.Add(1)
	p.runOptimistic()
}

// ---------------------------------------------------------------------------
// Pessimistic proxy (paper §4.2).
// ---------------------------------------------------------------------------

// onCommitted reacts to a committed update at VT cvt touching an attached
// object: a snapshot is created at cvt and later snapshots are revised.
func (p *viewProxy) onCommitted(cvt vtime.VT) {
	if p.detached {
		return
	}
	if cvt.LessEq(p.lastNotifiedVT) {
		// A committed straggler below the notification watermark would
		// violate monotonicity; reservations prevent this (§4.2), so
		// this indicates it was already covered by a delivered snapshot.
		return
	}
	idx := len(p.snaps)
	for i, sn := range p.snaps {
		if sn.ts == cvt {
			// Refresh and revise from here (values may now include the
			// newly committed straggler).
			p.reviseFrom(i)
			p.tryDeliver()
			return
		}
		if cvt.Less(sn.ts) {
			idx = i
			break
		}
	}
	// A new snapshot can lower the GC floor below the batch cache.
	p.site.invalidateGCFloor()
	snap := &snapshot{ts: cvt, rcDeps: map[vtime.VT]bool{}, wall: p.site.obs.NowNanos()}
	p.snaps = append(p.snaps, nil)
	copy(p.snaps[idx+1:], p.snaps[idx:])
	p.snaps[idx] = snap
	// Revise the new snapshot and every later one (their preceding-VT
	// boundary changed, paper §4.2).
	p.reviseFrom(idx)
	p.tryDeliver()
}

// reviseFrom rebuilds values and re-requests guesses for snaps[i:].
func (p *viewProxy) reviseFrom(i int) {
	for ; i < len(p.snaps); i++ {
		snap := p.snaps[i]
		snap.checkEpoch++
		snap.pendingChecks = 0
		snap.confirmed = false
		snap.transientWait = false
		rebuilt := p.buildSnapshot(snap.ts, true, false)
		snap.values = rebuilt.values
		snap.versions = rebuilt.versions
		p.requestPessimisticGuesses(i)
	}
}

// prevBoundary returns the VT preceding snaps[i]: the previous snapshot's
// ts, or lastNotifiedVT.
func (p *viewProxy) prevBoundary(i int) vtime.VT {
	if i == 0 {
		return p.lastNotifiedVT
	}
	return p.snaps[i-1].ts
}

// requestPessimisticGuesses registers the RL guesses of snaps[i]: for
// every attached object, the interval from the preceding snapshot to ts
// must be free of committed updates (paper §4.2).
func (p *viewProxy) requestPessimisticGuesses(i int) {
	s := p.site
	snap := p.snaps[i]
	prev := p.prevBoundary(i)
	epoch := snap.checkEpoch

	checksBySite := map[vtime.SiteID][]wire.ReadCheck{}
	for _, o := range p.attached {
		root := o.replicationRoot()
		g := root.graph
		if g == nil || g.NumNodes() <= 1 {
			continue
		}
		// Eager confirmation (paper §5.1.2): when the object was updated
		// by the committing transaction itself AND that transaction's own
		// confirmed RL reservation (tR, tT] covers the snapshot interval
		// (prev, tS) — i.e. it was a read-write whose tR is at or before
		// the preceding boundary — the primary has already validated and
		// reserved the interval: no separate CONFIRM-READ round trip and
		// full straggler protection. Blind writes (tR = tT) reserve
		// nothing, so they take the explicit check below.
		if v, okv := o.hist.Get(snap.ts); !s.opts.DisableEagerConfirm && okv && v.Status == history.Committed &&
			!v.ReadVT.IsZero() && v.ReadVT != v.VT && v.ReadVT.LessEq(prev) {
			pv, okPrev := o.hist.At(vtime.JustBelow(snap.ts))
			if !okPrev || pv.VT.LessEq(prev) {
				continue
			}
		}
		primaryNode, _ := g.Primary()
		primarySite, _ := g.SiteOf(primaryNode)
		if primarySite == s.id {
			target := s.resolveCheckTarget(primaryNode, o.pathFromRoot())
			if target == nil {
				continue
			}
			ok, reason := s.primaryCheck(target, root, prev, root.graphVT, snap.ts, false, true)
			if !ok {
				if isTransientReason(reason) {
					snap.transientWait = true
				}
				// A permanent local denial means a committed update in
				// the interval: its own onCommitted will insert an
				// earlier snapshot and revise us.
				continue
			}
			continue
		}
		checksBySite[primarySite] = append(checksBySite[primarySite], wire.ReadCheck{
			Target:        primaryNode,
			Path:          o.pathFromRoot(),
			ReadVT:        prev,
			GraphVT:       root.graphVT,
			CommittedOnly: true,
		})
	}
	// Site-sorted for the same reason as requestOptimisticGuesses.
	for _, site := range sortedSites(checksBySite) {
		checks := checksBySite[site]
		reqID := s.newReqID()
		snap.pendingChecks++
		s.confirmWaiters[reqID] = func(c wire.Confirm) {
			if p.detached || snap.checkEpoch != epoch || !p.contains(snap) {
				return
			}
			if c.OK {
				snap.pendingChecks--
				p.tryDeliver()
				return
			}
			if c.Transient {
				snap.pendingChecks--
				snap.transientWait = true
				return
			}
			// Permanent denial: a committed update exists in the
			// interval at the primary and will reach this site, insert
			// an earlier snapshot, and revise this one. Nothing to do.
		}
		s.send(site, wire.ConfirmRead{TxnVT: snap.ts, Origin: s.id, ReqID: reqID, Checks: checks})
	}
}

// contains reports whether snap is still managed by the proxy.
func (p *viewProxy) contains(snap *snapshot) bool {
	for _, sn := range p.snaps {
		if sn == snap {
			return true
		}
	}
	return false
}

// retryPending re-requests guesses for snapshots stalled on transient
// denials (an in-flight transaction settled).
func (p *viewProxy) retryPending() {
	for i, sn := range p.snaps {
		if sn.transientWait && sn.pendingChecks == 0 {
			sn.transientWait = false
			sn.checkEpoch++
			rebuilt := p.buildSnapshot(sn.ts, true, false)
			sn.values = rebuilt.values
			sn.versions = rebuilt.versions
			p.requestPessimisticGuesses(i)
		}
	}
	p.tryDeliver()
}

// tryDeliver notifies committed snapshots in VT order (paper §4.2:
// "When one or more snapshots commit, the view is notified, once for each
// committed snapshot, in VT sequence").
func (p *viewProxy) tryDeliver() {
	for len(p.snaps) > 0 {
		snap := p.snaps[0]
		if snap.pendingChecks > 0 || snap.transientWait {
			return
		}
		p.snaps = p.snaps[1:]
		p.deliverPessimistic(snap)
	}
}

// deliverPessimistic sends one committed snapshot to the view.
func (p *viewProxy) deliverPessimistic(snap *snapshot) {
	// Compute the change list against the previously notified state.
	snap.changed = nil
	first := !p.everNotified
	for _, o := range p.attached {
		v := snap.versions[o]
		if first || v != p.lastVersions[o] {
			snap.changed = append(snap.changed, o.id)
		}
		p.lastVersions[o] = v
	}
	if snap.versions == nil {
		for _, o := range p.attached {
			snap.changed = append(snap.changed, o.id)
		}
	}
	p.everNotified = true
	p.lastNotifiedVT = snap.ts
	data := snap.data(true)
	s := p.site
	s.stats.PessNotifications.Add(1)
	s.trace(obs.EvPessNotify, snap.ts, 0, "")
	wall := snap.wall
	s.notify(func() {
		s.obs.ObserveSince(s.stats.PessNotifyLatency, wall)
		p.fns.Update(data)
	})
}
