package engine

import (
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

func TestFailureNotificationMarksSite(t *testing.T) {
	h := newHarness(t, 3, transport.Config{})
	_ = h.joined(KindInt, "x", int64(0), 1, 2, 3)
	h.net.Kill(3)
	h.eventually(2*time.Second, "failure noted", func() bool {
		var failed bool
		_ = h.site(1).call(func() { failed = h.site(1).failed[3] })
		return failed
	})
}

func TestOriginatorFailureAbortsUnknownTxn(t *testing.T) {
	// The originating site dies right after distributing updates but
	// before any COMMIT: survivors must agree to abort (paper §3.4).
	h := newHarness(t, 3, transport.Config{Latency: 5 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	// A second relationship rooted at site 2, so the transaction has TWO
	// remote primary sites (1 and 2) and the delegated-commit
	// optimization does not apply — no single site can decide alone.
	refsY := h.joined(KindInt, "y", int64(0), 2, 1, 3)
	if p, _ := h.site(3).PrimarySite(refsY[3]); p != 2 {
		t.Fatalf("y's primary = %v, want 2", p)
	}

	// Kill site 3 the moment the updates are applied locally, before
	// confirmations can round-trip to the origin.
	hd := h.site(3).Submit(&Txn{Execute: func(tx *Tx) error {
		if err := tx.Write(refs[3], int64(77)); err != nil {
			return err
		}
		return tx.Write(refsY[3], int64(88))
	}})
	<-hd.Applied()
	h.net.Kill(3)

	// Survivors resolve the orphan: neither saw a COMMIT, so it aborts
	// and the replicas stay at the old committed value.
	h.eventually(3*time.Second, "orphan resolved", func() bool {
		v1, _ := h.site(1).ReadCurrent(refs[1])
		v2, _ := h.site(2).ReadCurrent(refs[2])
		y1, _ := h.site(1).ReadCurrent(refsY[1])
		return v1 == int64(0) && v2 == int64(0) && y1 == int64(0) &&
			h.noPendingTxns(1) && h.noPendingTxns(2)
	})
}

// noPendingTxns reports whether site i has no transactions in applied
// (undecided) state.
func (h *harness) noPendingTxns(i int) bool {
	ok := true
	_ = h.site(i).call(func() {
		for _, st := range h.site(i).txns {
			if st.status == txnApplied {
				ok = false
			}
		}
	})
	return ok
}

func TestOriginatorFailureCommitsKnownTxn(t *testing.T) {
	// If any survivor received the COMMIT, the transaction commits at all
	// survivors (paper §3.4).
	h := newHarness(t, 3, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		// COMMIT from site 3 to site 2 is fast; to site 1 very slow (so
		// site 1 is unaware at failure time and must learn via query).
		if from == 3 && to == 1 {
			return 80 * time.Millisecond
		}
		return 2 * time.Millisecond
	}})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	hd := h.setInt2Async(3, refs[3], 55)
	res := hd.Wait() // commits at origin (confirm from primary site 1 is fast)
	if !res.Committed {
		t.Fatalf("txn: %+v", res)
	}
	// Kill site 3 before its slow COMMIT reaches site 1.
	h.net.Kill(3)

	h.eventually(3*time.Second, "survivors converge on committed value", func() bool {
		v1, _ := h.site(1).ReadCommitted(refs[1])
		v2, _ := h.site(2).ReadCommitted(refs[2])
		return v1 == int64(55) && v2 == int64(55)
	})
}

func TestGraphRepairBySurvivingPrimary(t *testing.T) {
	// Site 2 (not the primary) fails; the surviving primary (site 1)
	// coordinates an ordinary graph update removing site 2's node.
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	h.net.Kill(2)
	h.eventually(3*time.Second, "graph repaired at survivors", func() bool {
		ok := true
		for _, i := range []int{1, 3} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil {
				return false
			}
			for _, s := range sites {
				if s == 2 {
					ok = false
				}
			}
		}
		return ok
	})

	// Writes keep working among survivors.
	if res := h.setInt(3, refs[3], 9); !res.Committed {
		t.Fatalf("post-repair write: %+v", res)
	}
	h.eventually(2*time.Second, "post-repair convergence", func() bool {
		v1, _ := h.site(1).ReadCommitted(refs[1])
		return v1 == int64(9)
	})
}

func TestGraphRepairByConsensusWhenPrimaryFails(t *testing.T) {
	// The PRIMARY site (site 1 hosts the minimum node) fails: survivors
	// run the consensus protocol, apply the repaired graph at a common
	// VT, and elect the new primary implicitly (paper §3.4).
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	p, _ := h.site(2).PrimarySite(refs[2])
	if p != 1 {
		t.Fatalf("expected primary at site 1, got %v", p)
	}
	h.net.Kill(1)

	h.eventually(3*time.Second, "consensus graph repair", func() bool {
		for _, i := range []int{2, 3} {
			sites, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(sites) != 2 {
				return false
			}
			for _, s := range sites {
				if s == 1 {
					return false
				}
			}
		}
		return true
	})

	// The new primary is a function of the repaired graph; writes work.
	if res := h.setInt(3, refs[3], 4); !res.Committed {
		t.Fatalf("post-consensus write: %+v", res)
	}
	h.eventually(2*time.Second, "post-consensus convergence", func() bool {
		v2, _ := h.site(2).ReadCommitted(refs[2])
		return v2 == int64(4)
	})
}

func TestTxnWaitingOnFailedPrimaryRetriesAfterRepair(t *testing.T) {
	// A transaction stuck waiting for a failed primary's confirmation is
	// aborted, parked, and retried after the repair commits (paper §3.4:
	// "it is retried later after the graph update has committed and a new
	// primary site is identified").
	h := newHarness(t, 3, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		if from == 3 || to == 3 {
			return 50 * time.Millisecond // slow path to the primary
		}
		return 2 * time.Millisecond
	}})
	// Make site 3 host the primary: join 3's object first so it has the
	// minimal ObjectID... ObjectIDs order by site, so site 1 would win.
	// Instead create the relationship starting from site 3.
	refs := h.joined(KindInt, "x", int64(0), 3, 1, 2)
	p, _ := h.site(1).PrimarySite(refs[1])
	if p != 3 {
		t.Fatalf("expected primary at site 3, got %v", p)
	}

	hd := h.setInt2Async(1, refs[1], 123)
	<-hd.Applied()
	h.net.Kill(3) // primary dies while the confirm is in flight

	res := hd.Wait()
	if !res.Committed {
		t.Fatalf("parked retry should eventually commit: %+v", res)
	}
	h.eventually(3*time.Second, "value committed at survivors", func() bool {
		v1, _ := h.site(1).ReadCommitted(refs[1])
		v2, _ := h.site(2).ReadCommitted(refs[2])
		return v1 == int64(123) && v2 == int64(123)
	})
}
