package engine

import (
	"errors"
	"fmt"

	"decaf/internal/ids"
	"decaf/internal/vtime"
)

// ObjRef is an opaque handle to a model object hosted at a site. Refs are
// obtained from CreateObject, composite accessors, and join results, and
// passed to Tx accessors and AttachView.
type ObjRef struct {
	o *object
}

// ID returns the object's globally unique identifier.
func (r ObjRef) ID() ids.ObjectID {
	if r.o == nil {
		return ids.ObjectID{}
	}
	return r.o.id
}

// Valid reports whether the ref points at an object.
func (r ObjRef) Valid() bool { return r.o != nil }

// Kind returns the model-object kind.
func (r ObjRef) Kind() Kind {
	if r.o == nil {
		return 0
	}
	return r.o.kind
}

// Errors returned by the object API.
var (
	ErrWrongKind     = errors.New("engine: operation on wrong model-object kind")
	ErrInvalidRef    = errors.New("engine: invalid object reference")
	ErrNoSuchElement = errors.New("engine: no such element")
)

// CreateObject creates a standalone model object at this site with the
// given kind, description, and initial value (nil selects the kind's zero
// value). Composites ignore the initial value.
func (s *Site) CreateObject(kind Kind, desc string, initial any) (ObjRef, error) {
	if initial == nil {
		initial = defaultValue(kind)
	}
	var ref ObjRef
	err := s.call(func() {
		ref = ObjRef{o: s.newObject(kind, desc, initial)}
	})
	return ref, err
}

// Object resolves an ObjectID to a local ref.
func (s *Site) Object(id ids.ObjectID) (ObjRef, bool) {
	var ref ObjRef
	var ok bool
	if err := s.call(func() {
		o, found := s.objects[id]
		ref, ok = ObjRef{o: o}, found
	}); err != nil {
		return ObjRef{}, false
	}
	return ref, ok
}

// ReadCurrent returns the object's current (possibly uncommitted) value,
// outside any transaction. Composites materialize to []any /
// map[string]any.
func (s *Site) ReadCurrent(ref ObjRef) (any, error) {
	if ref.o == nil {
		return nil, ErrInvalidRef
	}
	var v any
	err := s.call(func() {
		v = ref.o.readValue(ref.o.latestVT(), false)
	})
	return v, err
}

// ReadCommitted returns the object's latest committed value.
func (s *Site) ReadCommitted(ref ObjRef) (any, error) {
	if ref.o == nil {
		return nil, ErrInvalidRef
	}
	var v any
	err := s.call(func() {
		v = ref.o.readValue(ref.o.latestCommittedVT(), true)
	})
	return v, err
}

// ReplicaSites returns the sites hosting replicas of ref (including this
// one), per its current replication graph.
func (s *Site) ReplicaSites(ref ObjRef) ([]vtime.SiteID, error) {
	if ref.o == nil {
		return nil, ErrInvalidRef
	}
	var out []vtime.SiteID
	err := s.call(func() {
		g, _ := ref.o.currentGraph()
		if g != nil {
			out = g.Sites()
		}
	})
	return out, err
}

// PrimarySite returns the site of ref's primary copy.
func (s *Site) PrimarySite(ref ObjRef) (vtime.SiteID, error) {
	if ref.o == nil {
		return 0, ErrInvalidRef
	}
	var out vtime.SiteID
	err := s.call(func() { out = ref.o.primarySite() })
	return out, err
}

// Read returns ref's current value inside a transaction, recording the
// read for concurrency control.
func (tx *Tx) Read(ref ObjRef) (any, error) {
	if ref.o == nil {
		return nil, ErrInvalidRef
	}
	if ref.o.isComposite() {
		tx.recordRead(ref.o)
		return ref.o.readValue(ref.o.latestVT(), false), nil
	}
	return tx.ReadScalar(ref.o), nil
}

// Write replaces a scalar (or association) object's value inside a
// transaction.
func (tx *Tx) Write(ref ObjRef, value any) error {
	if ref.o == nil {
		return ErrInvalidRef
	}
	if ref.o.isComposite() {
		return fmt.Errorf("%w: cannot Write composite %s", ErrWrongKind, ref.o.kind)
	}
	if err := checkValueKind(ref.o.kind, value); err != nil {
		return err
	}
	tx.WriteScalar(ref.o, value)
	return nil
}

// Add increments a numeric scalar object by delta (int64 for KindInt,
// float64 for KindFloat) inside a transaction. Adds commute: a
// transaction built only from adds and other commutative ops commits on
// the fast path, without a primary round-trip.
func (tx *Tx) Add(ref ObjRef, delta any) error {
	if ref.o == nil {
		return ErrInvalidRef
	}
	switch n := delta.(type) {
	case int:
		delta = int64(n)
	case int32:
		delta = int64(n)
	}
	switch ref.o.kind {
	case KindInt:
		if _, ok := delta.(int64); !ok {
			return fmt.Errorf("%w: delta %T does not fit %s", ErrWrongKind, delta, ref.o.kind)
		}
	case KindFloat:
		if _, ok := delta.(float64); !ok {
			return fmt.Errorf("%w: delta %T does not fit %s", ErrWrongKind, delta, ref.o.kind)
		}
	default:
		return fmt.Errorf("%w: cannot Add to %s", ErrWrongKind, ref.o.kind)
	}
	tx.AddScalar(ref.o, delta)
	return nil
}

// checkValueKind validates a scalar value against the object kind.
func checkValueKind(kind Kind, v any) error {
	ok := false
	switch kind {
	case KindInt:
		_, ok = v.(int64)
	case KindFloat:
		_, ok = v.(float64)
	case KindString:
		_, ok = v.(string)
	case KindBool:
		_, ok = v.(bool)
	case KindAssociation:
		return fmt.Errorf("%w: association values change via join/leave", ErrWrongKind)
	default:
		return fmt.Errorf("%w: %s holds no scalar", ErrWrongKind, kind)
	}
	if !ok {
		return fmt.Errorf("%w: value %T does not fit %s", ErrWrongKind, v, kind)
	}
	return nil
}
