package engine

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"decaf/internal/ids"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Options configures a Site.
type Options struct {
	// Logger receives engine debug logs; nil disables logging.
	Logger *slog.Logger
	// MaxRetries bounds automatic re-execution after concurrency-control
	// aborts. 0 means DefaultMaxRetries.
	MaxRetries int
	// RetryDelay pauses between a conflict abort and re-execution.
	// The paper re-executes immediately; a small delay can be used to
	// damp livelock under extreme contention.
	RetryDelay time.Duration
	// DisableGC retains full histories and reservations (useful for
	// tests that inspect them).
	DisableGC bool
	// DisableDelegation turns off the delegated-commit optimization of
	// paper §3.1 (ablation: every transaction then commits via the
	// origin's summary broadcast, costing remote observers 3t even with
	// a single remote primary).
	DisableDelegation bool
	// DisableEagerConfirm turns off the §5.1.2 eager-confirmation
	// optimization for pessimistic snapshots (ablation: every snapshot
	// then pays an explicit CONFIRM-READ round trip to each primary).
	DisableEagerConfirm bool
}

// DefaultMaxRetries bounds automatic transaction re-execution.
const DefaultMaxRetries = 100

// Stats are the site's monotonic event counters, readable via Site.Stats.
type Stats struct {
	// Submitted counts transactions submitted at this site.
	Submitted uint64
	// Commits counts transactions (originated here) that committed.
	Commits uint64
	// ConflictAborts counts concurrency-control aborts of transactions
	// originated here (each is followed by a retry unless the retry
	// budget is exhausted).
	ConflictAborts uint64
	// ProgrammedAborts counts transactions aborted by user code.
	ProgrammedAborts uint64
	// Retries counts automatic re-executions.
	Retries uint64
	// MessagesSent counts protocol messages sent by this site.
	MessagesSent uint64
	// UpdatesApplied counts remote updates applied at this site.
	UpdatesApplied uint64
	// OptNotifications counts optimistic view update notifications.
	OptNotifications uint64
	// OptCommits counts optimistic view commit notifications.
	OptCommits uint64
	// PessNotifications counts pessimistic view update notifications.
	PessNotifications uint64
	// LostUpdates counts straggler updates subsumed by a later optimistic
	// snapshot (paper §5.1.2 "lost updates").
	LostUpdates uint64
	// UpdateInconsistencies counts optimistic notifications that exposed
	// state later rolled back (paper §5.1.2 "update inconsistencies").
	UpdateInconsistencies uint64
	// SnapshotReruns counts optimistic snapshots rerun after an abort.
	SnapshotReruns uint64
}

// Site is one collaborating application instance: it hosts model objects,
// executes transactions, exchanges protocol messages with peer sites, and
// drives view notifications.
//
// All site state is owned by a single event-loop goroutine. Public methods
// are safe to call from any goroutine.
type Site struct {
	id    vtime.SiteID
	clock *vtime.Clock
	ep    transport.Endpoint
	opts  Options
	log   *slog.Logger

	calls chan func()
	stop  chan struct{}
	done  chan struct{}

	// notifier delivers user callbacks (view update/commit, abort
	// handlers) outside the event loop, in order.
	notifier     chan func()
	notifierDone chan struct{}

	// Loop-confined state.
	objects map[ids.ObjectID]*object
	nextSeq uint64
	txns    map[vtime.VT]*txnState
	// outcomes retains summary outcomes so that late update messages are
	// treated correctly (paper §3.1).
	outcomes map[vtime.VT]bool
	// rcWaiters maps an undecided transaction VT to continuations to run
	// when its outcome becomes known at this site (RC guesses).
	rcWaiters map[vtime.VT][]func(committed bool)
	// confirmWaiters routes Confirm replies for ConfirmRead requests
	// (view snapshots and join protocol steps) by request ID.
	confirmWaiters map[uint64]func(wire.Confirm)
	nextReq        uint64
	// joins tracks in-flight collaboration joins by request ID.
	joins map[uint64]*joinState
	// promotes tracks in-flight direct-propagation promotions (§3.2.2).
	promotes map[uint64]*promoteState
	// repairs tracks in-flight graph repairs after site failures.
	repairs map[vtime.SiteID]*repairState
	// commitQueries tracks outstanding outcome polls for transactions
	// orphaned by an originator failure.
	commitQueries map[vtime.VT]*queryState
	// parked holds transaction retries deferred until graph repair.
	parked []parkedRetry
	// failed records peer sites known to have failed.
	failed map[vtime.SiteID]bool
	// authorizer is the site's authorization monitor (nil: allow all).
	authorizer Authorizer

	// stats are lock-free atomic counters: bumps happen on every message
	// send and apply, so they must not contend with the event loop.
	stats statCounters

	startOnce sync.Once
	stopOnce  sync.Once
}

// statCounters mirrors Stats with atomic counters. Site.Stats assembles a
// plain snapshot from it.
type statCounters struct {
	Submitted             atomic.Uint64
	Commits               atomic.Uint64
	ConflictAborts        atomic.Uint64
	ProgrammedAborts      atomic.Uint64
	Retries               atomic.Uint64
	MessagesSent          atomic.Uint64
	UpdatesApplied        atomic.Uint64
	OptNotifications      atomic.Uint64
	OptCommits            atomic.Uint64
	PessNotifications     atomic.Uint64
	LostUpdates           atomic.Uint64
	UpdateInconsistencies atomic.Uint64
	SnapshotReruns        atomic.Uint64
}

// NewSite creates a site attached to the given transport endpoint.
// Call Start before use. Site ID 0 is reserved (it means "no site" in
// protocol fields) and is rejected.
func NewSite(ep transport.Endpoint, opts Options) *Site {
	if ep.Site() == 0 {
		panic("engine: site ID 0 is reserved; use IDs >= 1")
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Site{
		id:             ep.Site(),
		clock:          vtime.NewClock(ep.Site()),
		ep:             ep,
		opts:           opts,
		log:            logger.With("site", ep.Site().String()),
		calls:          make(chan func(), 1024),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		notifier:       make(chan func(), 4096),
		notifierDone:   make(chan struct{}),
		objects:        map[ids.ObjectID]*object{},
		txns:           map[vtime.VT]*txnState{},
		outcomes:       map[vtime.VT]bool{},
		rcWaiters:      map[vtime.VT][]func(bool){},
		confirmWaiters: map[uint64]func(wire.Confirm){},
		joins:          map[uint64]*joinState{},
		promotes:       map[uint64]*promoteState{},
		repairs:        map[vtime.SiteID]*repairState{},
		commitQueries:  map[vtime.VT]*queryState{},
		failed:         map[vtime.SiteID]bool{},
	}
}

// ID returns the site identifier.
func (s *Site) ID() vtime.SiteID { return s.id }

// Start launches the event loop and the notifier goroutine.
func (s *Site) Start() {
	s.startOnce.Do(func() {
		go s.loop()
		go s.notifyLoop()
	})
}

// Stop shuts the site down and waits for its goroutines to exit.
// In-flight transactions are abandoned.
func (s *Site) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	<-s.notifierDone
}

// Stats returns a snapshot of the site's counters.
func (s *Site) Stats() Stats {
	return Stats{
		Submitted:             s.stats.Submitted.Load(),
		Commits:               s.stats.Commits.Load(),
		ConflictAborts:        s.stats.ConflictAborts.Load(),
		ProgrammedAborts:      s.stats.ProgrammedAborts.Load(),
		Retries:               s.stats.Retries.Load(),
		MessagesSent:          s.stats.MessagesSent.Load(),
		UpdatesApplied:        s.stats.UpdatesApplied.Load(),
		OptNotifications:      s.stats.OptNotifications.Load(),
		OptCommits:            s.stats.OptCommits.Load(),
		PessNotifications:     s.stats.PessNotifications.Load(),
		LostUpdates:           s.stats.LostUpdates.Load(),
		UpdateInconsistencies: s.stats.UpdateInconsistencies.Load(),
		SnapshotReruns:        s.stats.SnapshotReruns.Load(),
	}
}

// loop is the site's event loop: it owns all site state.
func (s *Site) loop() {
	defer close(s.done)
	events := s.ep.Events()
	for {
		select {
		case <-s.stop:
			return
		case fn := <-s.calls:
			fn()
		case ev, ok := <-events:
			if !ok {
				// Transport killed this site (fail-stop crash in a
				// simulation, or endpoint closed).
				return
			}
			s.handleEvent(ev)
		}
	}
}

// notifyLoop runs user callbacks in order, outside the event loop.
func (s *Site) notifyLoop() {
	defer close(s.notifierDone)
	for {
		select {
		case <-s.stop:
			// Drain anything already queued so tests observe final
			// notifications, then exit.
			for {
				select {
				case fn := <-s.notifier:
					fn()
				default:
					return
				}
			}
		case fn := <-s.notifier:
			fn()
		}
	}
}

// notify queues a user callback.
func (s *Site) notify(fn func()) {
	select {
	case s.notifier <- fn:
	case <-s.stop:
	}
}

// do posts fn into the event loop without waiting.
func (s *Site) do(fn func()) {
	select {
	case s.calls <- fn:
	case <-s.stop:
	case <-s.done:
	}
}

// call posts fn into the event loop and waits for it to run. It returns
// an error when the site is stopped.
func (s *Site) call(fn func()) error {
	ch := make(chan struct{})
	wrapped := func() {
		fn()
		close(ch)
	}
	select {
	case s.calls <- wrapped:
	case <-s.stop:
		return ErrSiteStopped
	case <-s.done:
		return ErrSiteStopped
	}
	select {
	case <-ch:
		return nil
	case <-s.done:
		return ErrSiteStopped
	}
}

// ErrSiteStopped is returned by API calls on a stopped site.
var ErrSiteStopped = errors.New("engine: site stopped")

// send stamps and transmits a protocol message.
func (s *Site) send(to vtime.SiteID, msg wire.Message) {
	if to == s.id {
		// Loop back locally without the transport; used by protocol
		// steps that uniformly address every involved site.
		s.handleMessage(s.id, msg)
		return
	}
	if s.failed[to] {
		return
	}
	if err := s.ep.Send(to, s.clock.Now(), msg); err != nil {
		s.log.Debug("send failed", "to", to.String(), "kind", msg.Kind(), "err", err)
		return
	}
	s.stats.MessagesSent.Add(1)
}

// handleEvent dispatches one transport event inside the loop.
func (s *Site) handleEvent(ev transport.Event) {
	switch ev.Kind {
	case transport.EventMessage:
		s.clock.Observe(ev.SentAt)
		s.handleMessage(ev.From, ev.Msg)
	case transport.EventSiteFailed:
		s.handleSiteFailure(ev.Failed)
	case transport.EventSiteRecovered:
		s.handleSiteRecovered(ev.Failed)
	}
}

// handleMessage dispatches a protocol message inside the loop.
func (s *Site) handleMessage(from vtime.SiteID, msg wire.Message) {
	switch m := msg.(type) {
	case wire.Write:
		s.handleWrite(from, m)
	case wire.ConfirmRead:
		s.handleConfirmRead(from, m)
	case wire.Confirm:
		s.handleConfirm(m)
	case wire.Outcome:
		s.handleOutcome(m)
	case wire.JoinRequest:
		s.handleJoinRequest(from, m)
	case wire.PromoteQuery:
		s.handlePromoteQuery(m)
	case wire.PromoteReply:
		s.handlePromoteReply(m)
	case wire.JoinReply:
		s.handleJoinReply(m)
	case wire.CommitQuery:
		s.handleCommitQuery(from, m)
	case wire.CommitQueryReply:
		s.handleCommitQueryReply(m)
	case wire.RepairPropose:
		s.handleRepairPropose(m)
	case wire.RepairAck:
		s.handleRepairAck(m)
	case wire.RepairDecide:
		s.handleRepairDecide(m)
	default:
		s.log.Warn("unknown message", "from", from.String(), "type", fmt.Sprintf("%T", msg))
	}
}

// newReqID allocates a request ID for ConfirmRead/Join round trips.
func (s *Site) newReqID() uint64 {
	s.nextReq++
	return s.nextReq
}

// decidedFloor returns the largest VT below which every transaction known
// at this site is decided; histories and reservations may be pruned below
// it (subject to outstanding snapshot floors).
func (s *Site) decidedFloor() vtime.VT {
	floor := s.clock.Now()
	for vt, st := range s.txns {
		if st.status == txnApplied || st.status == txnWaiting || st.status == txnExecuting {
			if vt.LessEq(floor) {
				floor = vtime.JustBelow(vt)
			}
		}
	}
	return floor
}

// snapshotFloor returns the minimum VT any outstanding view snapshot may
// still read, across all proxies at this site.
func (s *Site) snapshotFloor() vtime.VT {
	floor := s.clock.Now()
	for _, o := range s.objects {
		for _, p := range o.proxies {
			if f, ok := p.minSnapshotVT(); ok && f.Less(floor) {
				floor = f
			}
		}
	}
	return floor
}

// maybeGC prunes the given object's histories and reservations.
func (s *Site) maybeGC(o *object) {
	if s.opts.DisableGC {
		return
	}
	floor := s.decidedFloor()
	if sf := s.snapshotFloor(); sf.Less(floor) {
		floor = sf
	}
	o.hist.GC(floor)
	o.graphHist.GC(floor)
	o.res.GCBelow(floor)
	o.graphRes.GCBelow(floor)
}
