package engine

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"decaf/internal/ids"
	"decaf/internal/obs"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Options configures a Site.
type Options struct {
	// Logger receives engine debug logs; nil disables logging.
	Logger *slog.Logger
	// MaxRetries bounds automatic re-execution after concurrency-control
	// aborts. 0 means DefaultMaxRetries.
	MaxRetries int
	// RetryDelay pauses between a conflict abort and re-execution.
	// The paper re-executes immediately; a small delay can be used to
	// damp livelock under extreme contention.
	RetryDelay time.Duration
	// DisableGC retains full histories and reservations (useful for
	// tests that inspect them).
	DisableGC bool
	// DisableDelegation turns off the delegated-commit optimization of
	// paper §3.1 (ablation: every transaction then commits via the
	// origin's summary broadcast, costing remote observers 3t even with
	// a single remote primary).
	DisableDelegation bool
	// DisableEagerConfirm turns off the §5.1.2 eager-confirmation
	// optimization for pessimistic snapshots (ablation: every snapshot
	// then pays an explicit CONFIRM-READ round trip to each primary).
	DisableEagerConfirm bool
	// Observer receives the site's metrics, trace events, and debug
	// state. nil selects obs.Nop(): counters still count (Stats reads
	// them) but tracing and wall-clock timing are off. One Observer
	// serves one site; layers of the same site (engine, transport, gvt)
	// share it so a single scrape covers the whole process.
	Observer *obs.Observer
}

// DefaultMaxRetries bounds automatic transaction re-execution.
const DefaultMaxRetries = 100

// Stats are the site's monotonic event counters, readable via Site.Stats.
type Stats struct {
	// Submitted counts transactions submitted at this site.
	Submitted uint64
	// Commits counts transactions (originated here) that committed.
	Commits uint64
	// ConflictAborts counts concurrency-control aborts of transactions
	// originated here (each is followed by a retry unless the retry
	// budget is exhausted).
	ConflictAborts uint64
	// ProgrammedAborts counts transactions aborted by user code.
	ProgrammedAborts uint64
	// Retries counts automatic re-executions.
	Retries uint64
	// MessagesSent counts protocol messages sent by this site.
	MessagesSent uint64
	// UpdatesApplied counts remote updates applied at this site.
	UpdatesApplied uint64
	// OptNotifications counts optimistic view update notifications.
	OptNotifications uint64
	// OptCommits counts optimistic view commit notifications.
	OptCommits uint64
	// PessNotifications counts pessimistic view update notifications.
	PessNotifications uint64
	// LostUpdates counts straggler updates subsumed by a later optimistic
	// snapshot (paper §5.1.2 "lost updates").
	LostUpdates uint64
	// UpdateInconsistencies counts optimistic notifications that exposed
	// state later rolled back (paper §5.1.2 "update inconsistencies").
	UpdateInconsistencies uint64
	// SnapshotReruns counts optimistic snapshots rerun after an abort.
	SnapshotReruns uint64
}

// Site is one collaborating application instance: it hosts model objects,
// executes transactions, exchanges protocol messages with peer sites, and
// drives view notifications.
//
// All site state is owned by a single event-loop goroutine. Public methods
// are safe to call from any goroutine.
type Site struct {
	id    vtime.SiteID
	clock *vtime.Clock
	ep    transport.Endpoint
	opts  Options
	log   *slog.Logger

	calls chan func()
	stop  chan struct{}
	done  chan struct{}

	// notifier delivers user callbacks (view update/commit, abort
	// handlers) outside the event loop, in order.
	notifier     chan func()
	notifierDone chan struct{}

	// Loop-confined state.
	objects map[ids.ObjectID]*object
	nextSeq uint64
	txns    map[vtime.VT]*txnState
	// outcomes retains summary outcomes so that late update messages are
	// treated correctly (paper §3.1).
	outcomes map[vtime.VT]bool
	// rcWaiters maps an undecided transaction VT to continuations to run
	// when its outcome becomes known at this site (RC guesses).
	rcWaiters map[vtime.VT][]func(committed bool)
	// confirmWaiters routes Confirm replies for ConfirmRead requests
	// (view snapshots and join protocol steps) by request ID.
	confirmWaiters map[uint64]func(wire.Confirm)
	nextReq        uint64
	// joins tracks in-flight collaboration joins by request ID.
	joins map[uint64]*joinState
	// promotes tracks in-flight direct-propagation promotions (§3.2.2).
	promotes map[uint64]*promoteState
	// repairs tracks in-flight graph repairs after site failures.
	repairs map[vtime.SiteID]*repairState
	// commitQueries tracks outstanding outcome polls for transactions
	// orphaned by an originator failure.
	commitQueries map[vtime.VT]*queryState
	// parked holds transaction retries deferred until graph repair.
	parked []parkedRetry
	// failed records peer sites known to have failed.
	failed map[vtime.SiteID]bool
	// authorizer is the site's authorization monitor (nil: allow all).
	authorizer Authorizer

	// obs is the site's observer (never nil; defaults to obs.Nop()).
	obs *obs.Observer
	// stats are lock-free obs counters: bumps happen on every message
	// send and apply, so they must not contend with the event loop.
	stats siteMetrics
	// started gates the debug state source so it never posts into an
	// event loop that is not running yet.
	started atomic.Bool

	startOnce sync.Once
	stopOnce  sync.Once
}

// siteMetrics holds the site's registered metric handles. The counter
// fields mirror Stats; Site.Stats assembles a plain snapshot from them.
// All handles are lock-free atomics (see internal/obs), so the bump
// sites behave exactly as the former private atomic counters did.
type siteMetrics struct {
	Submitted             *obs.Counter
	Commits               *obs.Counter
	ConflictAborts        *obs.Counter
	ProgrammedAborts      *obs.Counter
	Retries               *obs.Counter
	MessagesSent          *obs.Counter
	UpdatesApplied        *obs.Counter
	OptNotifications      *obs.Counter
	OptCommits            *obs.Counter
	PessNotifications     *obs.Counter
	LostUpdates           *obs.Counter
	UpdateInconsistencies *obs.Counter
	SnapshotReruns        *obs.Counter

	// Latency histograms (wall seconds unless noted). Samples only
	// arrive when the observer has timing enabled.
	CommitLatency       *obs.Histogram // submit -> commit, local txns
	CommitLatencyVT     *obs.Histogram // execute -> commit, Lamport ticks
	RemoteCommitLatency *obs.Histogram // apply -> outcome, remote txns
	OptNotifyLatency    *obs.Histogram // snapshot -> optimistic delivery
	PessNotifyLatency   *obs.Histogram // snapshot -> pessimistic delivery
}

// newSiteMetrics registers (or fetches) the engine's metrics on reg.
func newSiteMetrics(reg *obs.Registry) siteMetrics {
	return siteMetrics{
		Submitted:             reg.Counter("decaf_txn_submitted_total", "transactions submitted at this site"),
		Commits:               reg.Counter("decaf_txn_committed_total", "locally originated transactions that committed"),
		ConflictAborts:        reg.Counter("decaf_txn_conflict_aborts_total", "concurrency-control aborts of local transactions"),
		ProgrammedAborts:      reg.Counter("decaf_txn_programmed_aborts_total", "transactions aborted by user code"),
		Retries:               reg.Counter("decaf_txn_retries_total", "automatic re-executions after conflict aborts"),
		MessagesSent:          reg.Counter("decaf_messages_sent_total", "protocol messages sent by this site"),
		UpdatesApplied:        reg.Counter("decaf_updates_applied_total", "remote updates applied at this site"),
		OptNotifications:      reg.Counter("decaf_view_opt_notifications_total", "optimistic view update notifications"),
		OptCommits:            reg.Counter("decaf_view_opt_commits_total", "optimistic view commit notifications"),
		PessNotifications:     reg.Counter("decaf_view_pess_notifications_total", "pessimistic view update notifications"),
		LostUpdates:           reg.Counter("decaf_view_lost_updates_total", "straggler updates subsumed by a later optimistic snapshot"),
		UpdateInconsistencies: reg.Counter("decaf_view_update_inconsistencies_total", "optimistic notifications that exposed rolled-back state"),
		SnapshotReruns:        reg.Counter("decaf_view_snapshot_reruns_total", "optimistic snapshots rerun after an abort"),

		CommitLatency:       reg.Histogram("decaf_txn_commit_latency_seconds", "submit-to-commit wall latency of locally originated transactions", obs.WallBuckets),
		CommitLatencyVT:     reg.Histogram("decaf_txn_commit_latency_vt_ticks", "execute-to-commit Lamport-clock distance of locally originated transactions", obs.VTBuckets),
		RemoteCommitLatency: reg.Histogram("decaf_txn_remote_commit_latency_seconds", "apply-to-outcome wall latency of remotely originated transactions", obs.WallBuckets),
		OptNotifyLatency:    reg.Histogram("decaf_view_opt_notify_latency_seconds", "snapshot-to-delivery wall latency of optimistic view notifications", obs.WallBuckets),
		PessNotifyLatency:   reg.Histogram("decaf_view_pess_notify_latency_seconds", "snapshot-to-delivery wall latency of pessimistic view notifications", obs.WallBuckets),
	}
}

// NewSite creates a site attached to the given transport endpoint.
// Call Start before use. Site ID 0 is reserved (it means "no site" in
// protocol fields) and is rejected.
func NewSite(ep transport.Endpoint, opts Options) *Site {
	if ep.Site() == 0 {
		panic("engine: site ID 0 is reserved; use IDs >= 1")
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	observer := opts.Observer
	if observer == nil {
		observer = obs.Nop()
	}
	s := &Site{
		id:             ep.Site(),
		clock:          vtime.NewClock(ep.Site()),
		ep:             ep,
		opts:           opts,
		log:            logger.With("site", ep.Site().String()),
		calls:          make(chan func(), 1024),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		notifier:       make(chan func(), 4096),
		notifierDone:   make(chan struct{}),
		objects:        map[ids.ObjectID]*object{},
		txns:           map[vtime.VT]*txnState{},
		outcomes:       map[vtime.VT]bool{},
		rcWaiters:      map[vtime.VT][]func(bool){},
		confirmWaiters: map[uint64]func(wire.Confirm){},
		joins:          map[uint64]*joinState{},
		promotes:       map[uint64]*promoteState{},
		repairs:        map[vtime.SiteID]*repairState{},
		commitQueries:  map[vtime.VT]*queryState{},
		failed:         map[vtime.SiteID]bool{},
		obs:            observer,
		stats:          newSiteMetrics(observer.Metrics()),
	}
	s.registerObs()
	return s
}

// registerObs installs the engine's scrape-time gauges and debug state
// source on the site's observer.
func (s *Site) registerObs() {
	reg := s.obs.Metrics()
	// Channel depths are safe to read from any goroutine.
	reg.GaugeFunc("decaf_engine_calls_queue_depth", "pending event-loop calls", func() float64 { return float64(len(s.calls)) })
	reg.GaugeFunc("decaf_engine_notifier_queue_depth", "pending view/user callbacks", func() float64 { return float64(len(s.notifier)) })
	s.obs.RegisterStateSource("engine", s.debugState)
}

// debugState snapshots loop-confined engine state for the debug server.
// It posts into the event loop, so it reflects a consistent instant.
func (s *Site) debugState() any {
	if !s.started.Load() {
		return map[string]any{"running": false}
	}
	var out map[string]any
	if err := s.call(func() { out = s.collectDebugState() }); err != nil {
		return map[string]any{"running": false}
	}
	out["running"] = true
	return out
}

// collectDebugState assembles the engine's debug map inside the loop.
func (s *Site) collectDebugState() map[string]any {
	byStatus := map[string]int{}
	for _, st := range s.txns {
		switch st.status {
		case txnExecuting:
			byStatus["executing"]++
		case txnWaiting:
			byStatus["waiting"]++
		case txnApplied:
			byStatus["applied"]++
		case txnCommitted:
			byStatus["committed"]++
		case txnAborted:
			byStatus["aborted"]++
		}
	}
	reservations := map[string]int{}
	views := map[string]int{}
	for id, o := range s.objects {
		if n := o.res.Len() + o.graphRes.Len(); n > 0 {
			reservations[id.String()] = n
		}
		for _, p := range o.proxies {
			if p.mode == Optimistic {
				views["optimistic"]++
			} else {
				views["pessimistic"]++
			}
		}
	}
	var failedSites []string
	for site := range s.failed {
		failedSites = append(failedSites, site.String())
	}
	return map[string]any{
		"site":                 s.id.String(),
		"clock":                s.clock.Now().String(),
		"objects":              len(s.objects),
		"txns_by_status":       byStatus,
		"reservations":         reservations,
		"outcomes_retained":    len(s.outcomes),
		"rc_waiters":           len(s.rcWaiters),
		"confirm_waiters":      len(s.confirmWaiters),
		"parked_retries":       len(s.parked),
		"failed_sites":         failedSites,
		"attached_views":       views,
		"calls_queue_depth":    len(s.calls),
		"notifier_queue_depth": len(s.notifier),
	}
}

// trace records one VT-stamped protocol event when tracing is enabled.
// Call sites that build costly Detail strings guard with
// s.obs.TraceEnabled() first.
func (s *Site) trace(kind obs.EventKind, txn vtime.VT, peer vtime.SiteID, detail string) {
	if !s.obs.TraceEnabled() {
		return
	}
	s.obs.Trace().Record(obs.Event{
		Wall:   s.obs.NowNanos(),
		TxnVT:  txn,
		Site:   s.id,
		Kind:   kind,
		Peer:   peer,
		Detail: detail,
	})
}

// Observer returns the site's observer.
func (s *Site) Observer() *obs.Observer { return s.obs }

// ID returns the site identifier.
func (s *Site) ID() vtime.SiteID { return s.id }

// Start launches the event loop and the notifier goroutine.
func (s *Site) Start() {
	s.startOnce.Do(func() {
		s.started.Store(true)
		go s.loop()
		go s.notifyLoop()
	})
}

// Stop shuts the site down and waits for its goroutines to exit.
// In-flight transactions are abandoned.
func (s *Site) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	<-s.notifierDone
}

// Stats returns a snapshot of the site's counters. It is a thin read
// over the obs registry: the same counters serve Stats and /metrics.
func (s *Site) Stats() Stats {
	return Stats{
		Submitted:             s.stats.Submitted.Value(),
		Commits:               s.stats.Commits.Value(),
		ConflictAborts:        s.stats.ConflictAborts.Value(),
		ProgrammedAborts:      s.stats.ProgrammedAborts.Value(),
		Retries:               s.stats.Retries.Value(),
		MessagesSent:          s.stats.MessagesSent.Value(),
		UpdatesApplied:        s.stats.UpdatesApplied.Value(),
		OptNotifications:      s.stats.OptNotifications.Value(),
		OptCommits:            s.stats.OptCommits.Value(),
		PessNotifications:     s.stats.PessNotifications.Value(),
		LostUpdates:           s.stats.LostUpdates.Value(),
		UpdateInconsistencies: s.stats.UpdateInconsistencies.Value(),
		SnapshotReruns:        s.stats.SnapshotReruns.Value(),
	}
}

// loop is the site's event loop: it owns all site state.
func (s *Site) loop() {
	defer close(s.done)
	events := s.ep.Events()
	for {
		select {
		case <-s.stop:
			return
		case fn := <-s.calls:
			fn()
		case ev, ok := <-events:
			if !ok {
				// Transport killed this site (fail-stop crash in a
				// simulation, or endpoint closed).
				return
			}
			s.handleEvent(ev)
		}
	}
}

// notifyLoop runs user callbacks in order, outside the event loop.
func (s *Site) notifyLoop() {
	defer close(s.notifierDone)
	for {
		select {
		case <-s.stop:
			// Drain anything already queued so tests observe final
			// notifications, then exit.
			for {
				select {
				case fn := <-s.notifier:
					fn()
				default:
					return
				}
			}
		case fn := <-s.notifier:
			fn()
		}
	}
}

// notify queues a user callback.
func (s *Site) notify(fn func()) {
	select {
	case s.notifier <- fn:
	case <-s.stop:
	}
}

// do posts fn into the event loop without waiting.
func (s *Site) do(fn func()) {
	select {
	case s.calls <- fn:
	case <-s.stop:
	case <-s.done:
	}
}

// call posts fn into the event loop and waits for it to run. It returns
// an error when the site is stopped.
func (s *Site) call(fn func()) error {
	ch := make(chan struct{})
	wrapped := func() {
		fn()
		close(ch)
	}
	select {
	case s.calls <- wrapped:
	case <-s.stop:
		return ErrSiteStopped
	case <-s.done:
		return ErrSiteStopped
	}
	select {
	case <-ch:
		return nil
	case <-s.done:
		return ErrSiteStopped
	}
}

// ErrSiteStopped is returned by API calls on a stopped site.
var ErrSiteStopped = errors.New("engine: site stopped")

// send stamps and transmits a protocol message.
func (s *Site) send(to vtime.SiteID, msg wire.Message) {
	if to == s.id {
		// Loop back locally without the transport; used by protocol
		// steps that uniformly address every involved site.
		s.handleMessage(s.id, msg)
		return
	}
	if s.failed[to] {
		return
	}
	if err := s.ep.Send(to, s.clock.Now(), msg); err != nil {
		s.log.Debug("send failed", "to", to.String(), "kind", msg.Kind(), "err", err)
		return
	}
	s.stats.MessagesSent.Add(1)
}

// handleEvent dispatches one transport event inside the loop.
func (s *Site) handleEvent(ev transport.Event) {
	switch ev.Kind {
	case transport.EventMessage:
		s.clock.Observe(ev.SentAt)
		s.handleMessage(ev.From, ev.Msg)
	case transport.EventSiteFailed:
		s.handleSiteFailure(ev.Failed)
	case transport.EventSiteRecovered:
		s.handleSiteRecovered(ev.Failed)
	}
}

// handleMessage dispatches a protocol message inside the loop.
func (s *Site) handleMessage(from vtime.SiteID, msg wire.Message) {
	switch m := msg.(type) {
	case wire.Write:
		s.handleWrite(from, m)
	case wire.ConfirmRead:
		s.handleConfirmRead(from, m)
	case wire.Confirm:
		s.handleConfirm(m)
	case wire.Outcome:
		s.handleOutcome(m)
	case wire.JoinRequest:
		s.handleJoinRequest(from, m)
	case wire.PromoteQuery:
		s.handlePromoteQuery(m)
	case wire.PromoteReply:
		s.handlePromoteReply(m)
	case wire.JoinReply:
		s.handleJoinReply(m)
	case wire.CommitQuery:
		s.handleCommitQuery(from, m)
	case wire.CommitQueryReply:
		s.handleCommitQueryReply(m)
	case wire.RepairPropose:
		s.handleRepairPropose(m)
	case wire.RepairAck:
		s.handleRepairAck(m)
	case wire.RepairDecide:
		s.handleRepairDecide(m)
	default:
		s.log.Warn("unknown message", "from", from.String(), "type", fmt.Sprintf("%T", msg))
	}
}

// newReqID allocates a request ID for ConfirmRead/Join round trips.
func (s *Site) newReqID() uint64 {
	s.nextReq++
	return s.nextReq
}

// decidedFloor returns the largest VT below which every transaction known
// at this site is decided; histories and reservations may be pruned below
// it (subject to outstanding snapshot floors).
func (s *Site) decidedFloor() vtime.VT {
	floor := s.clock.Now()
	for vt, st := range s.txns {
		if st.status == txnApplied || st.status == txnWaiting || st.status == txnExecuting {
			if vt.LessEq(floor) {
				floor = vtime.JustBelow(vt)
			}
		}
	}
	return floor
}

// snapshotFloor returns the minimum VT any outstanding view snapshot may
// still read, across all proxies at this site.
func (s *Site) snapshotFloor() vtime.VT {
	floor := s.clock.Now()
	for _, o := range s.objects {
		for _, p := range o.proxies {
			if f, ok := p.minSnapshotVT(); ok && f.Less(floor) {
				floor = f
			}
		}
	}
	return floor
}

// maybeGC prunes the given object's histories and reservations.
func (s *Site) maybeGC(o *object) {
	if s.opts.DisableGC {
		return
	}
	floor := s.decidedFloor()
	if sf := s.snapshotFloor(); sf.Less(floor) {
		floor = sf
	}
	o.hist.GC(floor)
	o.graphHist.GC(floor)
	o.res.GCBelow(floor)
	o.graphRes.GCBelow(floor)
}
