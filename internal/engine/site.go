package engine

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"decaf/internal/ids"
	"decaf/internal/obs"
	"decaf/internal/transport"
	"decaf/internal/vtime"
	"decaf/internal/wal"
	"decaf/internal/wire"
)

// Options configures a Site.
type Options struct {
	// Logger receives engine debug logs; nil disables logging.
	Logger *slog.Logger
	// MaxRetries bounds automatic re-execution after concurrency-control
	// aborts. 0 means DefaultMaxRetries.
	MaxRetries int
	// RetryDelay pauses between a conflict abort and re-execution.
	// The paper re-executes immediately; a small delay can be used to
	// damp livelock under extreme contention.
	RetryDelay time.Duration
	// DisableGC retains full histories and reservations (useful for
	// tests that inspect them).
	DisableGC bool
	// DisableDelegation turns off the delegated-commit optimization of
	// paper §3.1 (ablation: every transaction then commits via the
	// origin's summary broadcast, costing remote observers 3t even with
	// a single remote primary).
	DisableDelegation bool
	// DisableEagerConfirm turns off the §5.1.2 eager-confirmation
	// optimization for pessimistic snapshots (ablation: every snapshot
	// then pays an explicit CONFIRM-READ round trip to each primary).
	DisableEagerConfirm bool
	// DisableFastPath turns off the commutative fast path (ablation:
	// purely commutative transactions then go through the ordinary
	// guess/confirm protocol like everything else).
	DisableFastPath bool
	// CommitWorkers sizes the sharded commit pipeline: remote writes
	// over disjoint top-level objects are validated and applied on this
	// many goroutines (one of which is the event loop itself), striped
	// by object ID. 0 means GOMAXPROCS; values <= 1 keep the pipeline
	// fully serial on the event loop.
	CommitWorkers int
	// NotifyQueueLimit bounds the view/abort notification queue. The
	// queue grows on demand (the event loop never blocks on a slow
	// consumer); past the limit new notifications are dropped and
	// counted on decaf_notify_dropped_total. 0 means
	// DefaultNotifyQueueLimit.
	NotifyQueueLimit int
	// Observer receives the site's metrics, trace events, and debug
	// state. nil selects obs.Nop(): counters still count (Stats reads
	// them) but tracing and wall-clock timing are off. One Observer
	// serves one site; layers of the same site (engine, transport, gvt)
	// share it so a single scrape covers the whole process.
	Observer *obs.Observer
	// Scheduler defers engine work — the RetryDelay pause before a
	// conflict retry and the OfflineGrace failover deadline. nil selects
	// transport.WallClock (real timers). The deterministic simulation
	// harness injects its virtual clock here so retry timing is part of
	// the explored, replayable schedule; the engine itself constructs no
	// timers (enforced by the decaf-vet timers analyzer).
	Scheduler Scheduler
	// WAL, when set, attaches a durable write-ahead update log
	// (DESIGN.md §13): every remote Write/FastWrite/Outcome and every
	// local commit is appended before the batch ends, Checkpoint writes
	// a covering marker, Recover replays the tail over the newest
	// checkpoint, and the anti-entropy sync protocol ships missing
	// records to reconnecting peers. All log I/O happens on the event
	// loop (the WAL's single-writer contract) and never under a lock.
	WAL *wal.Log
	// OfflineGrace bounds how long a failover stays parked for a peer
	// marked disconnected via SetPeerDisconnected: if the peer neither
	// recovers nor is unmarked within the grace period, the ordinary
	// §3.4 failover runs after all. Zero parks indefinitely (until the
	// transport reports the peer recovered).
	OfflineGrace time.Duration
}

// Scheduler schedules deferred engine work. Implemented by
// transport.WallClock (real timers, the default) and sim.Clock (virtual
// time).
type Scheduler interface {
	AfterFunc(d time.Duration, fn func()) (cancel func())
}

// DefaultMaxRetries bounds automatic transaction re-execution.
const DefaultMaxRetries = 100

// DefaultNotifyQueueLimit bounds the notification queue when Options
// leaves NotifyQueueLimit zero. It is deliberately deep: dropping a
// notification loses a view update for the application, so the limit
// exists only to keep a wedged consumer from consuming all memory.
const DefaultNotifyQueueLimit = 1 << 20

// maxBatch bounds how many stimuli (calls + transport events) one event
// loop wakeup drains before flushing staged writes and coalesced
// messages. The bound keeps Stop responsive under a saturated intake.
const maxBatch = 256

// Stats are the site's monotonic event counters, readable via Site.Stats.
type Stats struct {
	// Submitted counts transactions submitted at this site.
	Submitted uint64
	// InternalTxns counts transactions the engine initiated on its own
	// behalf (graph repair after a site failure). They commit and abort
	// like user transactions but never pass through Submit; the
	// quiescent accounting identity (see invariants.go) balances
	// Submitted + InternalTxns against decisions.
	InternalTxns uint64
	// Commits counts transactions (originated here) that committed.
	Commits uint64
	// ConflictAborts counts concurrency-control aborts of transactions
	// originated here (each is followed by a retry unless the retry
	// budget is exhausted).
	ConflictAborts uint64
	// ProgrammedAborts counts transactions aborted by user code.
	ProgrammedAborts uint64
	// Retries counts automatic re-executions.
	Retries uint64
	// MessagesSent counts protocol messages sent by this site.
	MessagesSent uint64
	// UpdatesApplied counts remote updates applied at this site.
	UpdatesApplied uint64
	// OptNotifications counts optimistic view update notifications.
	OptNotifications uint64
	// OptCommits counts optimistic view commit notifications.
	OptCommits uint64
	// PessNotifications counts pessimistic view update notifications.
	PessNotifications uint64
	// LostUpdates counts straggler updates subsumed by a later optimistic
	// snapshot (paper §5.1.2 "lost updates").
	LostUpdates uint64
	// UpdateInconsistencies counts optimistic notifications that exposed
	// state later rolled back (paper §5.1.2 "update inconsistencies").
	UpdateInconsistencies uint64
	// SnapshotReruns counts optimistic snapshots rerun after an abort.
	SnapshotReruns uint64
	// NotifyEnqueued counts user callbacks accepted by the notifier.
	NotifyEnqueued uint64
	// NotifyDelivered counts user callbacks that ran. After Stop,
	// NotifyEnqueued == NotifyDelivered + NotifyDropped.
	NotifyDelivered uint64
	// NotifyDropped counts user callbacks dropped by the notifier's
	// overflow policy (queue past NotifyQueueLimit).
	NotifyDropped uint64
	// FastpathCommits counts locally originated transactions that
	// committed on the commutative fast path (no primary round-trip).
	// These are included in Commits.
	FastpathCommits uint64
	// FastpathDemotions counts RL guesses demoted to re-validation
	// because a fast-path commit landed inside their reserved interval.
	FastpathDemotions uint64
	// FailoversParked counts EventSiteFailed notifications parked
	// because the peer was marked disconnected-not-failed
	// (SetPeerDisconnected); no §3.4 failover ran for them.
	FailoversParked uint64
	// FailoversRun counts §3.4 failovers actually executed (including
	// parked ones whose OfflineGrace deadline expired).
	FailoversRun uint64
	// RepairBallots counts consensus proposal attempts (ballots) this
	// site started for graph repairs. A stable cluster decides on the
	// first ballot; higher counts indicate takeovers and duels.
	RepairBallots uint64
	// RepairQuorumFailures counts repair proposal attempts abandoned
	// without a decision: preempted by a higher ballot, or timed out
	// short of a quorum (e.g. a minority partition).
	RepairQuorumFailures uint64
	// SyncSessions counts anti-entropy sessions this site initiated.
	SyncSessions uint64
	// SyncRecordsShipped counts WAL records shipped to peers in
	// anti-entropy sessions.
	SyncRecordsShipped uint64
	// SyncRecordsApplied counts anti-entropy records fed through the
	// normal message handlers at this site.
	SyncRecordsApplied uint64
	// SyncResubmits counts in-flight optimistic transactions re-sent
	// through the §3 confirmation flow after an anti-entropy session.
	SyncResubmits uint64
}

// Site is one collaborating application instance: it hosts model objects,
// executes transactions, exchanges protocol messages with peer sites, and
// drives view notifications.
//
// All site state is owned by a single event-loop goroutine. Public methods
// are safe to call from any goroutine.
type Site struct {
	id    vtime.SiteID
	clock *vtime.Clock
	ep    transport.Endpoint
	opts  Options
	log   *slog.Logger

	calls chan loopCall
	stop  chan struct{}
	done  chan struct{}

	// notifier delivers user callbacks (view update/commit, abort
	// handlers) outside the event loop, in order. Only the event loop
	// pushes into it, so after the loop exits the queue is complete and
	// Stop can drain it deterministically.
	notifier     *notifyQueue
	notifierDone chan struct{}

	// Loop-confined state.
	objects map[ids.ObjectID]*object
	nextSeq uint64
	txns    map[vtime.VT]*txnState
	// outcomes retains summary outcomes so that late update messages are
	// treated correctly (paper §3.1).
	outcomes map[vtime.VT]bool
	// rcWaiters maps an undecided transaction VT to continuations to run
	// when its outcome becomes known at this site (RC guesses).
	rcWaiters map[vtime.VT][]func(committed bool)
	// confirmWaiters routes Confirm replies for ConfirmRead requests
	// (view snapshots and join protocol steps) by request ID.
	confirmWaiters map[uint64]func(wire.Confirm)
	nextReq        uint64
	// joins tracks in-flight collaboration joins by request ID.
	joins map[uint64]*joinState
	// promotes tracks in-flight direct-propagation promotions (§3.2.2).
	promotes map[uint64]*promoteState
	// repairs tracks in-flight consensus-backed graph repairs after
	// site failures (one single-decree instance per failed site).
	repairs map[vtime.SiteID]*repairState
	// legacyRepairs tracks epoch-based repairs coordinated by
	// old-protocol peers (wire compatibility; this engine no longer
	// initiates them).
	legacyRepairs map[vtime.SiteID]*legacyRepairState
	// repairDecided retains decided graph repairs so duplicate or late
	// consensus traffic is answered without re-running the protocol.
	// Cleared when the failed site recovers (a later failure starts a
	// fresh instance).
	repairDecided map[vtime.SiteID]wire.RepairValue
	// commitQueries tracks outstanding outcome polls for transactions
	// orphaned by an originator failure.
	commitQueries map[vtime.VT]*queryState
	// parked holds transaction retries deferred until graph repair.
	parked []parkedRetry
	// failed records peer sites known to have failed.
	failed map[vtime.SiteID]bool
	// wal is the site's durable update log (nil: durability off).
	wal *wal.Log
	// checkpointSeq numbers checkpoint markers in the WAL; the next
	// Checkpoint writes seq checkpointSeq+1.
	checkpointSeq uint64
	// syncFloors are the anti-entropy version floors (DESIGN.md §13):
	// per origin, the highest transaction time this site provably holds
	// with no gaps below it. Advanced only by local commits (own origin)
	// and completed sync sessions (peer floors adopted) — never by
	// direct receipt, which can leave holes under partition.
	syncFloors map[vtime.SiteID]uint64
	// maxOwnDecided is the highest own-origin transaction time with a
	// decided (logged) outcome; the self floor is this minus any still
	// undecided own transaction below it.
	maxOwnDecided uint64
	// disconnected marks peers the application declared offline-not-
	// failed (SetPeerDisconnected); their failure events park instead of
	// triggering §3.4 failover.
	disconnected map[vtime.SiteID]bool
	// parkedFailures holds the cancel hooks of parked failovers (nil
	// value: parked without an OfflineGrace deadline).
	parkedFailures map[vtime.SiteID]func()
	// authorizer is the site's authorization monitor (nil: allow all).
	authorizer Authorizer

	// outbox coalesces outbound protocol messages per peer for the
	// current loop batch; flushOutbox transmits them at batch end.
	// Loop-confined.
	outbox      map[vtime.SiteID][]wire.Message
	outboxOrder []vtime.SiteID

	// Sharded commit pipeline (see shards.go). staged holds the current
	// batch's parallel-eligible remote writes; stagedVTs prevents two
	// messages of one transaction sharing a fork-join run; inFlush makes
	// re-entrant message handling (loopback sends from a finishing
	// write) fall back to the serial path. Loop-confined.
	staged    []*writeTask
	stagedVTs map[vtime.VT]bool
	inFlush   bool
	workers   int
	shardJobs chan shardJob
	workerWG  sync.WaitGroup

	// gcFloor caches the combined decided/snapshot GC floor for the
	// current loop batch (the quadratic-floors fix: one O(txns+objects)
	// pass per batch instead of one per object per commit).
	// Loop-confined.
	gcFloor      vtime.VT
	gcFloorValid bool

	// obs is the site's observer (never nil; defaults to obs.Nop()).
	obs *obs.Observer
	// stats are lock-free obs counters: bumps happen on every message
	// send and apply, so they must not contend with the event loop.
	stats siteMetrics
	// started gates the debug state source so it never posts into an
	// event loop that is not running yet.
	started atomic.Bool

	startOnce sync.Once
	stopOnce  sync.Once
}

// loopCall is one posted event-loop closure. onDrop, when set, runs if
// the site shuts down without running fn — the hook that lets Submit
// and the retry paths settle their Handles instead of leaking waiters.
type loopCall struct {
	fn     func()
	onDrop func()
}

// siteMetrics holds the site's registered metric handles. The counter
// fields mirror Stats; Site.Stats assembles a plain snapshot from them.
// All handles are lock-free atomics (see internal/obs), so the bump
// sites behave exactly as the former private atomic counters did.
type siteMetrics struct {
	Submitted             *obs.Counter
	InternalTxns          *obs.Counter
	Commits               *obs.Counter
	ConflictAborts        *obs.Counter
	ProgrammedAborts      *obs.Counter
	Retries               *obs.Counter
	MessagesSent          *obs.Counter
	UpdatesApplied        *obs.Counter
	OptNotifications      *obs.Counter
	OptCommits            *obs.Counter
	PessNotifications     *obs.Counter
	LostUpdates           *obs.Counter
	UpdateInconsistencies *obs.Counter
	SnapshotReruns        *obs.Counter
	FastpathCommits       *obs.Counter
	FastpathDemotions     *obs.Counter
	FailoversParked       *obs.Counter
	FailoversRun          *obs.Counter
	RepairBallots         *obs.Counter
	RepairQuorumFailures  *obs.Counter
	SyncSessions          *obs.Counter
	SyncRecordsShipped    *obs.Counter
	SyncRecordsApplied    *obs.Counter
	SyncResubmits         *obs.Counter
	WALAppendErrors       *obs.Counter

	// Hot-path pipeline counters.
	Batches         *obs.Counter // event-loop batches processed
	BatchEvents     *obs.Counter // stimuli drained across all batches
	ShardedWrites   *obs.Counter // remote writes through the shard pipeline
	SerialWrites    *obs.Counter // remote writes on the serial path
	CoalescedSends  *obs.Counter // messages sent piggybacked on a batch send
	GCFloorReuse    *obs.Counter // GC floor served from the batch cache
	NotifyEnqueued  *obs.Counter
	NotifyDelivered *obs.Counter
	NotifyDropped   *obs.Counter

	// ParkedRetries gauges transaction retries currently parked behind
	// a graph repair. Updated at the park and unpark sites (the backing
	// slice is loop-confined, so a scrape-time GaugeFunc cannot read it).
	ParkedRetries *obs.Gauge

	// Latency histograms (wall seconds unless noted). Samples only
	// arrive when the observer has timing enabled.
	CommitLatency       *obs.Histogram // submit -> commit, local txns
	CommitLatencyVT     *obs.Histogram // execute -> commit, Lamport ticks
	RemoteCommitLatency *obs.Histogram // apply -> outcome, remote txns
	OptNotifyLatency    *obs.Histogram // snapshot -> optimistic delivery
	PessNotifyLatency   *obs.Histogram // snapshot -> pessimistic delivery
}

// newSiteMetrics registers (or fetches) the engine's metrics on reg.
func newSiteMetrics(reg *obs.Registry) siteMetrics {
	return siteMetrics{
		Submitted:             reg.Counter("decaf_txn_submitted_total", "transactions submitted at this site"),
		InternalTxns:          reg.Counter("decaf_txn_internal_total", "transactions initiated by the engine itself (graph repair)"),
		Commits:               reg.Counter("decaf_txn_committed_total", "locally originated transactions that committed"),
		ConflictAborts:        reg.Counter("decaf_txn_conflict_aborts_total", "concurrency-control aborts of local transactions"),
		ProgrammedAborts:      reg.Counter("decaf_txn_programmed_aborts_total", "transactions aborted by user code"),
		Retries:               reg.Counter("decaf_txn_retries_total", "automatic re-executions after conflict aborts"),
		MessagesSent:          reg.Counter("decaf_messages_sent_total", "protocol messages sent by this site"),
		UpdatesApplied:        reg.Counter("decaf_updates_applied_total", "remote updates applied at this site"),
		OptNotifications:      reg.Counter("decaf_view_opt_notifications_total", "optimistic view update notifications"),
		OptCommits:            reg.Counter("decaf_view_opt_commits_total", "optimistic view commit notifications"),
		PessNotifications:     reg.Counter("decaf_view_pess_notifications_total", "pessimistic view update notifications"),
		LostUpdates:           reg.Counter("decaf_view_lost_updates_total", "straggler updates subsumed by a later optimistic snapshot"),
		UpdateInconsistencies: reg.Counter("decaf_view_update_inconsistencies_total", "optimistic notifications that exposed rolled-back state"),
		SnapshotReruns:        reg.Counter("decaf_view_snapshot_reruns_total", "optimistic snapshots rerun after an abort"),
		FastpathCommits:       reg.Counter("decaf_fastpath_commits_total", "transactions committed on the commutative fast path"),
		FastpathDemotions:     reg.Counter("decaf_fastpath_demotions_total", "RL guesses demoted to re-validation by a fast-path commit"),
		FailoversParked:       reg.Counter("decaf_failovers_parked_total", "failure events parked because the peer was marked disconnected"),
		FailoversRun:          reg.Counter("decaf_failovers_run_total", "§3.4 failovers executed"),
		RepairBallots:         reg.Counter("decaf_repair_ballots_total", "consensus proposal attempts started for graph repairs"),
		RepairQuorumFailures:  reg.Counter("decaf_repair_quorum_failures_total", "repair proposal attempts abandoned without a decision (preempted or quorum timeout)"),
		SyncSessions:          reg.Counter("decaf_sync_sessions_total", "anti-entropy sessions initiated by this site"),
		SyncRecordsShipped:    reg.Counter("decaf_sync_records_shipped_total", "WAL records shipped to peers in anti-entropy sessions"),
		SyncRecordsApplied:    reg.Counter("decaf_sync_records_applied_total", "anti-entropy records applied at this site"),
		SyncResubmits:         reg.Counter("decaf_sync_resubmits_total", "optimistic transactions re-submitted after an anti-entropy session"),
		WALAppendErrors:       reg.Counter("decaf_wal_append_errors_total", "WAL appends that failed (durability degraded)"),

		Batches:         reg.Counter("decaf_engine_batches_total", "event-loop batches processed"),
		BatchEvents:     reg.Counter("decaf_engine_batch_events_total", "calls and transport events drained across all batches"),
		ShardedWrites:   reg.Counter("decaf_engine_sharded_writes_total", "remote writes handled by the sharded commit pipeline"),
		SerialWrites:    reg.Counter("decaf_engine_serial_writes_total", "remote writes handled serially on the event loop"),
		CoalescedSends:  reg.Counter("decaf_engine_coalesced_sends_total", "outbound messages piggybacked on a coalesced batch send"),
		GCFloorReuse:    reg.Counter("decaf_engine_gc_floor_reuse_total", "GC floor computations served from the per-batch cache"),
		NotifyEnqueued:  reg.Counter("decaf_notify_enqueued_total", "user callbacks accepted by the notifier queue"),
		NotifyDelivered: reg.Counter("decaf_notify_delivered_total", "user callbacks delivered by the notifier goroutine"),
		NotifyDropped:   reg.Counter("decaf_notify_dropped_total", "user callbacks dropped by the notifier overflow policy"),

		ParkedRetries: reg.Gauge("decaf_engine_parked_retries", "transaction retries parked behind a graph repair"),

		CommitLatency:       reg.Histogram("decaf_txn_commit_latency_seconds", "submit-to-commit wall latency of locally originated transactions", obs.WallBuckets),
		CommitLatencyVT:     reg.Histogram("decaf_txn_commit_latency_vt_ticks", "execute-to-commit Lamport-clock distance of locally originated transactions", obs.VTBuckets),
		RemoteCommitLatency: reg.Histogram("decaf_txn_remote_commit_latency_seconds", "apply-to-outcome wall latency of remotely originated transactions", obs.WallBuckets),
		OptNotifyLatency:    reg.Histogram("decaf_view_opt_notify_latency_seconds", "snapshot-to-delivery wall latency of optimistic view notifications", obs.WallBuckets),
		PessNotifyLatency:   reg.Histogram("decaf_view_pess_notify_latency_seconds", "snapshot-to-delivery wall latency of pessimistic view notifications", obs.WallBuckets),
	}
}

// NewSite creates a site attached to the given transport endpoint.
// Call Start before use. Site ID 0 is reserved (it means "no site" in
// protocol fields) and is rejected.
func NewSite(ep transport.Endpoint, opts Options) *Site {
	if ep.Site() == 0 {
		panic("engine: site ID 0 is reserved; use IDs >= 1")
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.NotifyQueueLimit <= 0 {
		opts.NotifyQueueLimit = DefaultNotifyQueueLimit
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	observer := opts.Observer
	if observer == nil {
		observer = obs.Nop()
	}
	if opts.Scheduler == nil {
		opts.Scheduler = transport.WallClock{}
	}
	workers := opts.CommitWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numStripes {
		workers = numStripes
	}
	s := &Site{
		id:             ep.Site(),
		clock:          vtime.NewClock(ep.Site()),
		ep:             ep,
		opts:           opts,
		log:            logger.With("site", ep.Site().String()),
		calls:          make(chan loopCall, 1024),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		notifierDone:   make(chan struct{}),
		objects:        map[ids.ObjectID]*object{},
		txns:           map[vtime.VT]*txnState{},
		outcomes:       map[vtime.VT]bool{},
		rcWaiters:      map[vtime.VT][]func(bool){},
		confirmWaiters: map[uint64]func(wire.Confirm){},
		joins:          map[uint64]*joinState{},
		promotes:       map[uint64]*promoteState{},
		repairs:        map[vtime.SiteID]*repairState{},
		legacyRepairs:  map[vtime.SiteID]*legacyRepairState{},
		repairDecided:  map[vtime.SiteID]wire.RepairValue{},
		commitQueries:  map[vtime.VT]*queryState{},
		failed:         map[vtime.SiteID]bool{},
		wal:            opts.WAL,
		syncFloors:     map[vtime.SiteID]uint64{},
		disconnected:   map[vtime.SiteID]bool{},
		parkedFailures: map[vtime.SiteID]func(){},
		outbox:         map[vtime.SiteID][]wire.Message{},
		stagedVTs:      map[vtime.VT]bool{},
		workers:        workers,
		obs:            observer,
		stats:          newSiteMetrics(observer.Metrics()),
	}
	if s.wal != nil {
		// Continue the checkpoint-marker numbering of whatever log we
		// attached to (fresh logs report 0).
		s.checkpointSeq = s.wal.LastMarkSeq()
	}
	s.notifier = &notifyQueue{
		wake:      make(chan struct{}, 1),
		limit:     opts.NotifyQueueLimit,
		enqueued:  s.stats.NotifyEnqueued,
		delivered: s.stats.NotifyDelivered,
		dropped:   s.stats.NotifyDropped,
	}
	s.registerObs()
	return s
}

// registerObs installs the engine's scrape-time gauges and debug state
// source on the site's observer.
func (s *Site) registerObs() {
	reg := s.obs.Metrics()
	// Queue depths are safe to read from any goroutine.
	reg.GaugeFunc("decaf_engine_calls_queue_depth", "pending event-loop calls", func() float64 { return float64(len(s.calls)) })
	reg.GaugeFunc("decaf_engine_notifier_queue_depth", "pending view/user callbacks", func() float64 { return float64(s.notifier.depth()) })
	reg.GaugeFunc("decaf_engine_commit_workers", "goroutines serving the sharded commit pipeline", func() float64 { return float64(s.workers) })
	if s.wal != nil {
		// wal.Stats reads atomics, so scrapes never touch the event loop.
		reg.GaugeFunc("decaf_wal_records", "records in the write-ahead log", func() float64 { return float64(s.wal.Stats().Records) })
		reg.GaugeFunc("decaf_wal_bytes", "bytes in the write-ahead log", func() float64 { return float64(s.wal.Stats().Bytes) })
		reg.GaugeFunc("decaf_wal_segments", "segment files in the write-ahead log", func() float64 { return float64(s.wal.Stats().Segments) })
		reg.GaugeFunc("decaf_wal_syncs", "fsyncs issued by the write-ahead log", func() float64 { return float64(s.wal.Stats().Syncs) })
	}
	s.obs.RegisterStateSource("engine", s.debugState)
}

// debugState snapshots loop-confined engine state for the debug server.
// It posts into the event loop, so it reflects a consistent instant.
func (s *Site) debugState() any {
	if !s.started.Load() {
		return map[string]any{"running": false}
	}
	var out map[string]any
	if err := s.call(func() { out = s.collectDebugState() }); err != nil {
		return map[string]any{"running": false}
	}
	out["running"] = true
	return out
}

// collectDebugState assembles the engine's debug map inside the loop.
func (s *Site) collectDebugState() map[string]any {
	byStatus := map[string]int{}
	for _, st := range s.txns {
		switch st.status {
		case txnExecuting:
			byStatus["executing"]++
		case txnWaiting:
			byStatus["waiting"]++
		case txnApplied:
			byStatus["applied"]++
		case txnCommitted:
			byStatus["committed"]++
		case txnAborted:
			byStatus["aborted"]++
		}
	}
	reservations := map[string]int{}
	views := map[string]int{}
	for _, id := range sortedObjectIDs(s.objects) {
		o := s.objects[id]
		if n := o.res.Len() + o.graphRes.Len(); n > 0 {
			reservations[id.String()] = n
		}
		for _, p := range o.proxies {
			if p.mode == Optimistic {
				views["optimistic"]++
			} else {
				views["pessimistic"]++
			}
		}
	}
	var failedSites []string
	for _, site := range sortedSites(s.failed) {
		failedSites = append(failedSites, site.String())
	}
	return map[string]any{
		"site":                 s.id.String(),
		"clock":                s.clock.Now().String(),
		"objects":              len(s.objects),
		"txns_by_status":       byStatus,
		"reservations":         reservations,
		"outcomes_retained":    len(s.outcomes),
		"rc_waiters":           len(s.rcWaiters),
		"confirm_waiters":      len(s.confirmWaiters),
		"parked_retries":       len(s.parked),
		"repairs_in_flight":    len(s.repairs),
		"failed_sites":         failedSites,
		"attached_views":       views,
		"calls_queue_depth":    len(s.calls),
		"notifier_queue_depth": s.notifier.depth(),
		"commit_workers":       s.workers,
	}
}

// trace records one VT-stamped protocol event when tracing is enabled.
// Call sites that build costly Detail strings guard with
// s.obs.TraceEnabled() first.
func (s *Site) trace(kind obs.EventKind, txn vtime.VT, peer vtime.SiteID, detail string) {
	if !s.obs.TraceEnabled() {
		return
	}
	s.obs.Trace().Record(obs.Event{
		Wall:   s.obs.NowNanos(),
		TxnVT:  txn,
		Site:   s.id,
		Kind:   kind,
		Peer:   peer,
		Detail: detail,
	})
}

// Observer returns the site's observer.
func (s *Site) Observer() *obs.Observer { return s.obs }

// ID returns the site identifier.
func (s *Site) ID() vtime.SiteID { return s.id }

// Start launches the event loop, the shard workers, and the notifier
// goroutine.
func (s *Site) Start() {
	s.startOnce.Do(func() {
		s.started.Store(true)
		s.startWorkers()
		go s.loop()
		go s.notifyLoop()
	})
}

// Stop shuts the site down deterministically: it stops the event loop,
// settles every call still queued behind it (their onDrop hooks finish
// outstanding Handles with ErrSiteStopped), closes notification intake
// — by then complete, because only the event loop produces
// notifications — and waits for the notifier to drain in full. After
// Stop, NotifyEnqueued == NotifyDelivered + NotifyDropped: nothing that
// was accepted is lost to the shutdown race. In-flight transactions are
// abandoned.
func (s *Site) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	s.drainCalls()
	s.notifier.closeIntake()
	<-s.notifierDone
}

// drainCalls settles calls that were accepted but never reached the
// (now exited) event loop.
func (s *Site) drainCalls() {
	for {
		select {
		case c := <-s.calls:
			if c.onDrop != nil {
				c.onDrop()
			}
		default:
			return
		}
	}
}

// Quiescent reports whether the site has no runnable work: the event
// loop is parked over empty intake queues and the notifier is idle.
// Protocol messages still queued in the transport do not count — under
// the deterministic simulation those sit in the virtual clock's event
// queue, and the harness only advances it while every site is
// quiescent (see internal/sim). The check round-trips through the
// event loop, so the verdict is exact: a stimulus is either visibly
// queued or has fully run, never invisibly in between. A stopped or
// crashed site is quiescent once its notifier has drained.
func (s *Site) Quiescent() bool {
	quiet := false
	if err := s.call(func() {
		// The outbox/staged checks matter when this probe is drained
		// into the middle of an active batch: sends staged by earlier
		// stimuli of that batch only reach the transport at batch end,
		// so the site is not quiescent until they flush.
		quiet = len(s.calls) == 0 && len(s.ep.Events()) == 0 &&
			len(s.outbox) == 0 && len(s.staged) == 0
	}); err != nil {
		return s.notifier.idle()
	}
	return quiet && s.notifier.idle()
}

// PendingUndecided reports how many remotely originated transactions
// are applied but still undecided at this site. After global quiescence
// with no messages left in flight it must be zero — a nonzero count
// means an outcome was lost. Returns 0 for a stopped site.
func (s *Site) PendingUndecided() int {
	n := 0
	_ = s.call(func() {
		for _, st := range s.txns {
			if st.status == txnApplied {
				n++
			}
		}
	})
	return n
}

// WaitingLocal reports how many locally originated transactions are
// executed but still waiting for confirmations or RC dependencies at
// this site. Tests and benchmarks that cut a site off from its peers
// use it to observe that an optimistic transaction has actually sent
// its (doomed) confirmation request and parked, rather than still
// sitting in the submit queue. Returns 0 for a stopped site.
func (s *Site) WaitingLocal() int {
	n := 0
	_ = s.call(func() {
		for _, st := range s.txns {
			if st.status == txnWaiting && st.origin == s.id {
				n++
			}
		}
	})
	return n
}

// Stats returns a snapshot of the site's counters. It is a thin read
// over the obs registry: the same counters serve Stats and /metrics.
func (s *Site) Stats() Stats {
	return Stats{
		Submitted:             s.stats.Submitted.Value(),
		InternalTxns:          s.stats.InternalTxns.Value(),
		Commits:               s.stats.Commits.Value(),
		ConflictAborts:        s.stats.ConflictAborts.Value(),
		ProgrammedAborts:      s.stats.ProgrammedAborts.Value(),
		Retries:               s.stats.Retries.Value(),
		MessagesSent:          s.stats.MessagesSent.Value(),
		UpdatesApplied:        s.stats.UpdatesApplied.Value(),
		OptNotifications:      s.stats.OptNotifications.Value(),
		OptCommits:            s.stats.OptCommits.Value(),
		PessNotifications:     s.stats.PessNotifications.Value(),
		LostUpdates:           s.stats.LostUpdates.Value(),
		UpdateInconsistencies: s.stats.UpdateInconsistencies.Value(),
		SnapshotReruns:        s.stats.SnapshotReruns.Value(),
		NotifyEnqueued:        s.stats.NotifyEnqueued.Value(),
		NotifyDelivered:       s.stats.NotifyDelivered.Value(),
		NotifyDropped:         s.stats.NotifyDropped.Value(),
		FastpathCommits:       s.stats.FastpathCommits.Value(),
		FastpathDemotions:     s.stats.FastpathDemotions.Value(),
		FailoversParked:       s.stats.FailoversParked.Value(),
		FailoversRun:          s.stats.FailoversRun.Value(),
		RepairBallots:         s.stats.RepairBallots.Value(),
		RepairQuorumFailures:  s.stats.RepairQuorumFailures.Value(),
		SyncSessions:          s.stats.SyncSessions.Value(),
		SyncRecordsShipped:    s.stats.SyncRecordsShipped.Value(),
		SyncRecordsApplied:    s.stats.SyncRecordsApplied.Value(),
		SyncResubmits:         s.stats.SyncResubmits.Value(),
	}
}

// loop is the site's event loop: it owns all site state. Each wakeup
// processes a batch: the blocking stimulus plus up to maxBatch-1
// already-queued ones, then the batch epilogue runs staged writes
// through the shard pipeline and flushes coalesced outbound messages.
func (s *Site) loop() {
	defer close(s.done)
	defer s.stopWorkers()
	events := s.ep.Events()
	for {
		select {
		case <-s.stop:
			return
		case c := <-s.calls:
			s.beginBatch()
			c.fn()
			s.drainBatch(events, 1)
		case ev, ok := <-events:
			if !ok {
				// Transport killed this site (fail-stop crash in a
				// simulation, or endpoint closed).
				return
			}
			s.beginBatch()
			s.handleEvent(ev)
			s.drainBatch(events, 1)
		}
	}
}

// drainBatch consumes already-queued stimuli without blocking, then
// closes out the batch. n counts stimuli handled so far.
func (s *Site) drainBatch(events <-chan transport.Event, n int) {
	for n < maxBatch {
		select {
		case <-s.stop:
			s.endBatch(n)
			return
		case c := <-s.calls:
			// Posted closures may read any object, so staged writes
			// must land first.
			s.flushWrites()
			c.fn()
			n++
		case ev, ok := <-events:
			if !ok {
				s.endBatch(n)
				return
			}
			s.handleEvent(ev)
			n++
		default:
			s.endBatch(n)
			return
		}
	}
	s.endBatch(n)
}

// beginBatch resets per-batch state (the GC floor cache; see
// combinedGCFloor).
func (s *Site) beginBatch() {
	s.gcFloorValid = false
}

// endBatch runs the batch epilogue: staged writes, then the coalesced
// outbox.
func (s *Site) endBatch(n int) {
	s.flushWrites()
	s.flushOutbox()
	if s.wal != nil {
		// Under SyncBatch the WAL amortizes one fsync per event batch;
		// SyncAlways/SyncNever make this a no-op.
		if err := s.wal.Sync(); err != nil {
			s.stats.WALAppendErrors.Inc()
			s.log.Warn("wal sync failed", "err", err)
		}
	}
	s.stats.Batches.Inc()
	s.stats.BatchEvents.Add(uint64(n))
}

// notifyQueue delivers user callbacks in order on the notifier
// goroutine. It grows on demand so the event loop never blocks on a
// slow consumer — a full fixed-size buffer used to deadlock the site
// whenever a callback re-entered the API while the loop was wedged in
// notify(). Past limit, new callbacks are dropped and counted.
type notifyQueue struct {
	mu      sync.Mutex
	queue   []func() // guarded by mu
	closed  bool     // guarded by mu
	running bool     // guarded by mu; the notifier goroutine is mid-delivery
	// wake (capacity 1) signals the notifier goroutine; senders never
	// block.
	wake  chan struct{}
	limit int

	enqueued  *obs.Counter
	delivered *obs.Counter
	dropped   *obs.Counter
}

// push appends fn unless the queue is closed or full; overflow and
// post-close pushes are dropped and counted. It reports whether fn was
// accepted, so callers that coalesce (the view proxies) can re-arm on
// a later trigger instead of losing their delivery slot.
func (q *notifyQueue) push(fn func()) bool {
	q.mu.Lock()
	if q.closed || len(q.queue) >= q.limit {
		q.mu.Unlock()
		q.dropped.Inc()
		return false
	}
	q.queue = append(q.queue, fn)
	q.mu.Unlock()
	q.enqueued.Inc()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// take removes and returns everything queued, plus whether intake is
// closed; an empty result with closed=true means the queue is fully
// drained.
func (q *notifyQueue) take() ([]func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	fns := q.queue
	q.queue = nil
	q.running = len(fns) > 0
	return fns, q.closed
}

// settle marks the notifier goroutine idle again after delivering a
// take()'s batch.
func (q *notifyQueue) settle() {
	q.mu.Lock()
	q.running = false
	q.mu.Unlock()
}

// idle reports whether nothing is queued and no delivery is in flight.
func (q *notifyQueue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue) == 0 && !q.running
}

// closeIntake stops accepting callbacks and wakes the notifier so it
// can finish draining.
func (q *notifyQueue) closeIntake() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// depth returns the number of queued callbacks.
func (q *notifyQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queue)
}

// notifyLoop runs user callbacks in order, outside the event loop. It
// exits only once intake is closed and the queue is empty, so every
// accepted notification is delivered.
func (s *Site) notifyLoop() {
	defer close(s.notifierDone)
	q := s.notifier
	for {
		fns, closed := q.take()
		for _, fn := range fns {
			fn()
			q.delivered.Inc()
		}
		if len(fns) > 0 {
			q.settle()
			continue // re-check before sleeping: more may have queued
		}
		if closed {
			return
		}
		<-q.wake
	}
}

// notify queues a user callback and reports whether it was accepted.
// Only the event loop calls it.
func (s *Site) notify(fn func()) bool {
	return s.notifier.push(fn)
}

// do posts fn into the event loop without waiting. It reports whether
// the call was accepted; false means the site is stopped and fn will
// never run. An accepted call either runs on the loop or — if the site
// stops first — has its onDrop hook run by Stop, so callers that hold a
// Handle pass onDrop to settle it (see doOrDrop).
func (s *Site) do(fn func()) bool {
	return s.post(loopCall{fn: fn})
}

// doOrDrop posts fn with a shutdown hook: exactly one of fn (on the
// loop) or onDrop (during Stop) runs for an accepted call. When the
// post itself is rejected, doOrDrop runs onDrop inline and returns
// false.
func (s *Site) doOrDrop(fn, onDrop func()) bool {
	if s.post(loopCall{fn: fn, onDrop: onDrop}) {
		return true
	}
	onDrop()
	return false
}

func (s *Site) post(c loopCall) bool {
	select {
	case <-s.stop:
		return false
	case <-s.done:
		return false
	default:
	}
	select {
	case s.calls <- c:
		return true
	case <-s.stop:
		return false
	case <-s.done:
		return false
	}
}

// call posts fn into the event loop and waits for it to run. It returns
// an error when the site is stopped.
func (s *Site) call(fn func()) error {
	ch := make(chan struct{})
	wrapped := func() {
		fn()
		close(ch)
	}
	if !s.post(loopCall{fn: wrapped, onDrop: func() { close(ch) }}) {
		return ErrSiteStopped
	}
	select {
	case <-ch:
		return nil
	case <-s.done:
		return ErrSiteStopped
	}
}

// ErrSiteStopped is returned by API calls on a stopped site.
var ErrSiteStopped = errors.New("engine: site stopped")

// send stamps and transmits a protocol message. Non-loopback sends are
// coalesced into the batch outbox and leave in flushOutbox; the Lamport
// stamp is taken at flush time, which still follows every event the
// message reflects.
func (s *Site) send(to vtime.SiteID, msg wire.Message) {
	if to == s.id {
		// Loop back locally without the transport; used by protocol
		// steps that uniformly address every involved site.
		s.handleMessage(s.id, msg)
		return
	}
	if s.failed[to] {
		return
	}
	if _, ok := s.outbox[to]; !ok {
		s.outboxOrder = append(s.outboxOrder, to)
	}
	s.outbox[to] = append(s.outbox[to], msg)
}

// flushOutbox transmits the batch's coalesced messages, one transport
// handoff per peer when the endpoint supports batching.
func (s *Site) flushOutbox() {
	if len(s.outboxOrder) == 0 {
		return
	}
	now := s.clock.Now()
	batcher, canBatch := s.ep.(transport.BatchSender)
	for _, to := range s.outboxOrder {
		msgs := s.outbox[to]
		delete(s.outbox, to)
		if len(msgs) == 0 || s.failed[to] {
			continue
		}
		if canBatch {
			if err := batcher.SendBatch(to, now, msgs); err != nil {
				s.log.Debug("send failed", "to", to.String(), "batch", len(msgs), "err", err)
				continue
			}
			s.stats.MessagesSent.Add(uint64(len(msgs)))
			if len(msgs) > 1 {
				s.stats.CoalescedSends.Add(uint64(len(msgs) - 1))
			}
			continue
		}
		for _, msg := range msgs {
			if err := s.ep.Send(to, now, msg); err != nil {
				s.log.Debug("send failed", "to", to.String(), "kind", msg.Kind(), "err", err)
				continue
			}
			s.stats.MessagesSent.Add(1)
		}
	}
	s.outboxOrder = s.outboxOrder[:0]
}

// handleEvent dispatches one transport event inside the loop.
func (s *Site) handleEvent(ev transport.Event) {
	switch ev.Kind {
	case transport.EventMessage:
		s.clock.Observe(ev.SentAt)
		s.handleMessage(ev.From, ev.Msg)
	case transport.EventSiteFailed:
		s.flushWrites()
		if s.disconnected[ev.Failed] {
			// Offline mode (DESIGN.md §13): the peer is known to be
			// disconnected, not failed. Park the failover instead of
			// running §3.4 repair against a site that will come back
			// with its optimistic tail intact.
			s.parkFailure(ev.Failed)
			return
		}
		s.stats.FailoversRun.Inc()
		s.handleSiteFailure(ev.Failed)
	case transport.EventSiteRecovered:
		s.flushWrites()
		s.unparkFailure(ev.Failed)
		delete(s.disconnected, ev.Failed)
		s.handleSiteRecovered(ev.Failed)
		if s.wal != nil {
			// Pull anything the reconnecting peer committed while we
			// were apart; its own reconnect logic pulls our side.
			s.startSync(ev.Failed)
		}
	}
}

// handleMessage dispatches a protocol message inside the loop. Writes
// may stage into the shard pipeline; every other kind first forces
// staged writes to land, preserving arrival order at the state level.
func (s *Site) handleMessage(from vtime.SiteID, msg wire.Message) {
	if m, ok := msg.(wire.Write); ok {
		s.walLogWrite(m)
		if s.stageWrite(from, m) {
			return
		}
		s.flushWrites()
		s.stats.SerialWrites.Inc()
		s.handleWrite(from, m)
		return
	}
	if m, ok := msg.(wire.FastWrite); ok {
		if _, decided := s.outcomes[m.TxnVT]; decided {
			// A fast-path transaction ships exactly one FastWrite per
			// destination, so a recorded outcome means this copy is a
			// transport-level duplicate (or the repair protocol already
			// decided the transaction). Its ops are NOT idempotent —
			// re-applying an Add doubles the increment — so the copy
			// must be dropped, not merged. Found by the simulation
			// sweep: profile fastpath-faulty, seed 5 diverged replicas
			// before this guard existed.
			return
		}
		// Log after the duplicate guard so a replayed log never carries
		// the same FastWrite twice (its ops are not idempotent).
		s.walLogFastWrite(m)
		s.flushWrites()
		s.stats.SerialWrites.Inc()
		s.handleFastWrite(from, m)
		return
	}
	s.flushWrites()
	switch m := msg.(type) {
	case wire.ConfirmRead:
		s.handleConfirmRead(from, m)
	case wire.Confirm:
		s.handleConfirm(m)
	case wire.Outcome:
		s.walLogOutcome(m)
		s.handleOutcome(m)
	case wire.SyncRequest:
		s.handleSyncRequest(from, m)
	case wire.SyncUpdates:
		s.handleSyncUpdates(from, m)
	case wire.JoinRequest:
		s.handleJoinRequest(from, m)
	case wire.PromoteQuery:
		s.handlePromoteQuery(m)
	case wire.PromoteReply:
		s.handlePromoteReply(m)
	case wire.JoinReply:
		s.handleJoinReply(m)
	case wire.CommitQuery:
		s.handleCommitQuery(from, m)
	case wire.CommitQueryReply:
		s.handleCommitQueryReply(m)
	case wire.RepairPropose:
		s.handleRepairPropose(m)
	case wire.RepairAck:
		s.handleRepairAck(m)
	case wire.RepairDecide:
		s.handleRepairDecide(m)
	case wire.RepairPrepare:
		s.handleRepairPrepare(m)
	case wire.RepairPromise:
		s.handleRepairPromise(m)
	case wire.RepairAccept:
		s.handleRepairAccept(m)
	case wire.RepairAccepted:
		s.handleRepairAccepted(m)
	case wire.RepairLearn:
		s.handleRepairLearn(m)
	default:
		s.log.Warn("unknown message", "from", from.String(), "type", fmt.Sprintf("%T", msg))
	}
}

// newReqID allocates a request ID for ConfirmRead/Join round trips.
func (s *Site) newReqID() uint64 {
	s.nextReq++
	return s.nextReq
}

// decidedFloor returns the largest VT below which every transaction known
// at this site is decided; histories and reservations may be pruned below
// it (subject to outstanding snapshot floors).
func (s *Site) decidedFloor() vtime.VT {
	floor := s.clock.Now()
	for vt, st := range s.txns {
		if st.status == txnApplied || st.status == txnWaiting || st.status == txnExecuting {
			if vt.LessEq(floor) {
				floor = vtime.JustBelow(vt)
			}
		}
	}
	return floor
}

// snapshotFloor returns the minimum VT any outstanding view snapshot may
// still read, across all proxies at this site.
func (s *Site) snapshotFloor() vtime.VT {
	floor := s.clock.Now()
	for _, o := range s.objects {
		for _, p := range o.proxies {
			if f, ok := p.minSnapshotVT(); ok && f.Less(floor) {
				floor = f
			}
		}
	}
	return floor
}

// combinedGCFloor returns the batch-cached GC floor, computing it on
// first use within the batch. Committing a transaction only raises the
// true floor, so a stale-low cache merely defers pruning to the next
// batch; events that can lower the floor (new view snapshots) call
// invalidateGCFloor.
func (s *Site) combinedGCFloor() vtime.VT {
	if s.gcFloorValid {
		s.stats.GCFloorReuse.Inc()
		return s.gcFloor
	}
	floor := s.decidedFloor()
	if sf := s.snapshotFloor(); sf.Less(floor) {
		floor = sf
	}
	s.gcFloor = floor
	s.gcFloorValid = true
	// Retire decided transaction states below the floor. They are kept
	// only so late/duplicate messages can find them, and the outcomes
	// map already answers those; without this sweep s.txns grows with
	// every transaction ever seen and decidedFloor's scan turns the
	// commit hot path quadratic in transaction count.
	for _, vt := range sortedVTs(s.txns) {
		st := s.txns[vt]
		if (st.status == txnCommitted || st.status == txnAborted) && vt.LessEq(floor) {
			delete(s.txns, vt)
		}
	}
	return floor
}

// invalidateGCFloor drops the batch floor cache. Called where the floor
// can move down: snapshot creation.
func (s *Site) invalidateGCFloor() {
	s.gcFloorValid = false
}

// maybeGC prunes the given object's histories and reservations.
func (s *Site) maybeGC(o *object) {
	if s.opts.DisableGC {
		return
	}
	floor := s.combinedGCFloor()
	o.hist.GC(floor)
	o.graphHist.GC(floor)
	o.res.GCBelow(floor)
	o.graphRes.GCBelow(floor)
}
