package engine

import (
	"fmt"
	"strconv"

	"decaf/internal/history"
	"decaf/internal/obs"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// ensureTxn returns (creating if needed) the local transaction
// implementation object for a remotely originated transaction.
func (s *Site) ensureTxn(vt vtime.VT, origin vtime.SiteID) *txnState {
	if st, ok := s.txns[vt]; ok {
		return st
	}
	st := &txnState{vt: vt, origin: origin, status: txnApplied}
	s.txns[vt] = st
	return st
}

// handleWrite applies a remote transaction's updates; when this site hosts
// a primary copy it additionally validates the RL/NC guesses and confirms
// (or, as delegate, decides the whole transaction).
func (s *Site) handleWrite(from vtime.SiteID, m wire.Write) {
	// resendOutcome answers a confirm request from an already-recorded
	// decision: a resubmitted Write (anti-entropy recovery of a lost
	// confirmation, DESIGN.md §13) must not be re-validated — the
	// re-check could spuriously deny a transaction that is committed
	// system-wide. The origin treats the Outcome as the decision.
	resendOutcome := func(committed bool) {
		if m.Delegate != nil {
			for _, site := range m.Delegate.Sites {
				s.send(site, wire.Outcome{TxnVT: m.TxnVT, Committed: committed})
			}
			return
		}
		s.send(m.Origin, wire.Outcome{TxnVT: m.TxnVT, Committed: committed})
	}
	if known, ok := s.outcomes[m.TxnVT]; ok && !known {
		// Already aborted: ignore late updates (paper §3.1), but answer
		// a confirm request so a resubmitted origin un-wedges.
		if m.NeedsConfirm {
			resendOutcome(false)
		}
		return
	}
	committedAlready := false
	if known, ok := s.outcomes[m.TxnVT]; ok && known {
		committedAlready = true // late updates of a committed txn
	}
	st := s.ensureTxn(m.TxnVT, m.Origin)
	if st.appliedWall == 0 {
		st.appliedWall = s.obs.NowNanos()
	}
	s.trace(obs.EvApply, m.TxnVT, m.Origin, "")

	status := history.Pending
	if committedAlready {
		status = history.Committed
	}

	blocked := 0
	for _, upd := range m.Updates {
		upd := upd
		ok := s.applyUpdate(st, upd, status)
		if ok {
			s.stats.UpdatesApplied.Add(1)
		}
		if !ok {
			blocked++
			root := s.objects[upd.Target]
			if root != nil {
				root.pending = append(root.pending, pendingIndirect{
					txnVT:  m.TxnVT,
					origin: m.Origin,
					upd:    upd,
				})
			}
		}
	}
	s.scheduleOptimistic(st.appliedObjects())
	if committedAlready {
		s.onLocalCommit(st.appliedObjects(), m.TxnVT)
		st.status = txnCommitted
	}

	if !m.NeedsConfirm {
		return
	}
	if committedAlready {
		resendOutcome(true)
		return
	}

	decide := func() {
		ok, _, reason := s.validateAsPrimary(st, m.TxnVT, m.Updates, m.Checks)
		if !ok {
			s.log.Debug("primary denial", "txn", m.TxnVT.String(), "reason", reason)
		}
		if s.obs.TraceEnabled() {
			verdict := "ok"
			if !ok {
				verdict = reason
			}
			s.trace(obs.EvPrimaryCheck, m.TxnVT, m.Origin, verdict)
			if ok && len(st.reservedObjs) > 0 {
				s.trace(obs.EvReserve, m.TxnVT, 0, strconv.Itoa(len(st.reservedObjs))+" objects")
			}
		}
		if m.Delegate != nil {
			// Delegated commit (paper §3.1): this single remote primary
			// site decides the transaction and informs every involved
			// site directly.
			s.decideAsDelegate(st, m, ok)
			return
		}
		s.send(m.Origin, wire.Confirm{TxnVT: m.TxnVT, From: s.id, OK: ok, Reason: reason})
	}
	if blocked > 0 {
		// Structural ops for some paths have not arrived; the check (and
		// any delegation) must wait until propagation unblocks
		// (paper §3.2.1).
		st.blockedRemaining = blocked
		st.onUnblocked = decide
		return
	}
	decide()
}

// decideAsDelegate commits or aborts the whole transaction at the single
// remote primary site on the origin's behalf.
func (s *Site) decideAsDelegate(st *txnState, m wire.Write, ok bool) {
	s.outcomes[m.TxnVT] = ok
	// The delegate is the deciding site: the decision must be durable
	// here even though no Outcome message ever arrives on its wire.
	s.walAppendMsg(m.TxnVT, wire.Outcome{TxnVT: m.TxnVT, Committed: ok})
	if s.obs.TraceEnabled() {
		detail := "commit"
		if !ok {
			detail = "abort"
		}
		s.trace(obs.EvDelegatedCommit, m.TxnVT, m.Origin, detail)
	}
	if ok {
		st.commitApplied()
		st.status = txnCommitted
		for _, site := range m.Delegate.Sites {
			s.send(site, wire.Outcome{TxnVT: m.TxnVT, Committed: true})
		}
		s.resolveRC(m.TxnVT, true)
		s.onLocalCommit(st.appliedObjects(), m.TxnVT)
		s.gcTxnObjects(st)
		return
	}
	objs := st.appliedObjects()
	s.undoApplied(st)
	s.releaseReservations(st)
	st.status = txnAborted
	for _, site := range m.Delegate.Sites {
		s.send(site, wire.Outcome{TxnVT: m.TxnVT, Committed: false})
	}
	s.resolveRC(m.TxnVT, false)
	s.onLocalAbort(objs)
}

// validateAsPrimary runs the RL/NC checks this site is responsible for
// within one transaction message: updates whose target's primary copy
// lives here, plus explicit read checks.
func (s *Site) validateAsPrimary(st *txnState, vt vtime.VT, updates []wire.Update, checks []wire.ReadCheck) (ok, transient bool, reason string) {
	// Authorization monitors vet remote access before any guess check
	// (paper 1); a denial aborts the transaction at its origin.
	if err := s.authorizeUpdates(updates, st.origin); err != nil {
		return false, false, err.Error()
	}
	if err := s.authorizeChecks(checks, st.origin); err != nil {
		return false, false, err.Error()
	}
	for _, upd := range updates {
		root, exists := s.objects[upd.Target]
		if !exists {
			return false, false, fmt.Sprintf("unknown object %s", upd.Target)
		}
		if _, isGraph := upd.Op.(wire.OpGraph); isGraph {
			// Graph updates validate at the primary of the PREVIOUS
			// graph (the new graph has already been applied
			// optimistically) against the graph history and graph
			// reservations only (paper §3.3).
			groot := root.replicationRoot()
			if oldV, okOld := groot.graphHist.At(upd.GraphVT); okOld {
				if og, okG := oldV.Value.(*repgraph.Graph); okG {
					if pn, has := og.Primary(); has && pn != root.id {
						continue // another site validates this graph
					}
				}
			}
			iv := vtime.Interval{Lo: upd.GraphVT, Hi: vt}
			if groot.graphHist.HasVersionIn(iv, vt) {
				return false, false, fmt.Sprintf("RL: graph change in %s for %s", iv, groot.id)
			}
			if groot.graphRes.Conflicts(vt, vt) {
				return false, false, fmt.Sprintf("NC: graph reservation conflict at %s on %s", vt, groot.id)
			}
			groot.graphRes.Reserve(iv, vt)
			st.reservedObjs = append(st.reservedObjs, groot)
			continue
		}
		g, _ := root.currentGraph()
		primaryNode, has := g.Primary()
		if !has || primaryNode != root.id {
			continue // another site validates this object
		}
		target := root
		if len(upd.Path) > 0 {
			child, removed, blocked := root.resolvePath(upd.Path)
			if removed {
				return false, false, fmt.Sprintf("path %s removed", upd.Path)
			}
			if blocked || child == nil {
				// The structural op is part of this same transaction
				// and was just applied; a still-blocked path here means
				// out-of-order structure, handled by the caller.
				continue
			}
			target = child
		}
		if isStructuralOp(upd.Op) {
			target = targetForStructural(root, upd)
		}
		okc, reasonc := s.primaryCheck(target, root, upd.ReadVT, upd.GraphVT, vt, true, false)
		if !okc {
			return false, false, reasonc
		}
		st.reservedObjs = append(st.reservedObjs, target)
	}
	for _, c := range checks {
		okc, tr, reasonc := s.runReadCheck(c, vt)
		if !okc {
			return false, tr, reasonc
		}
		if obj := s.resolveCheckTarget(c.Target, c.Path); obj != nil {
			st.reservedObjs = append(st.reservedObjs, obj)
		}
	}
	return true, false, ""
}

// isStructuralOp reports whether op changes composite structure (and thus
// validates against the composite itself rather than a child).
func isStructuralOp(op wire.Op) bool {
	switch op.(type) {
	case wire.OpListInsert, wire.OpListInsertAfter, wire.OpListRemove, wire.OpTupleSet, wire.OpTupleRemove:
		return true
	default:
		return false
	}
}

// targetForStructural resolves the composite a structural op applies to:
// the root itself (empty path) or the composite at the path.
func targetForStructural(root *object, upd wire.Update) *object {
	if len(upd.Path) == 0 {
		return root
	}
	child, _, _ := root.resolvePath(upd.Path)
	if child == nil {
		return root
	}
	return child
}

// runReadCheck validates one RL read-check at this primary site,
// reserving the interval on success.
func (s *Site) runReadCheck(c wire.ReadCheck, vt vtime.VT) (ok, transient bool, reason string) {
	root, exists := s.objects[c.Target]
	if !exists {
		return false, false, fmt.Sprintf("unknown object %s", c.Target)
	}
	target := root
	if len(c.Path) > 0 {
		child, removed, blocked := root.resolvePath(c.Path)
		if removed {
			return false, false, fmt.Sprintf("path %s removed", c.Path)
		}
		if blocked || child == nil {
			return false, true, fmt.Sprintf("transient: path %s not yet present", c.Path)
		}
		target = child
	}
	okc, reasonc := s.primaryCheckOpts(target, root, c.ReadVT, c.GraphVT, vt, false, c.CommittedOnly, c.NoReserve)
	if !okc {
		return false, isTransientReason(reasonc), reasonc
	}
	return true, false, ""
}

// isTransientReason reports whether a denial reason marks a transient
// condition.
func isTransientReason(reason string) bool {
	return len(reason) >= 10 && reason[:10] == "transient:"
}

// handleConfirmRead validates RL guesses on behalf of a remote reader
// (a transaction's read set, a view snapshot, or a join step).
func (s *Site) handleConfirmRead(from vtime.SiteID, m wire.ConfirmRead) {
	if err := s.authorizeChecks(m.Checks, m.Origin); err != nil {
		s.send(m.Origin, wire.Confirm{TxnVT: m.TxnVT, ReqID: m.ReqID, From: s.id, OK: false, Reason: err.Error()})
		return
	}
	allOK := true
	anyTransient := false
	reason := ""
	st := s.txns[m.TxnVT] // may be nil; reservations then tracked per object
	for _, c := range m.Checks {
		ok, tr, r := s.runReadCheck(c, m.TxnVT)
		if !ok {
			allOK = false
			anyTransient = anyTransient || tr
			reason = r
			break
		}
		if st != nil {
			if obj := s.resolveCheckTarget(c.Target, c.Path); obj != nil {
				st.reservedObjs = append(st.reservedObjs, obj)
			}
		}
	}
	s.send(m.Origin, wire.Confirm{
		TxnVT:     m.TxnVT,
		ReqID:     m.ReqID,
		From:      s.id,
		OK:        allOK,
		Transient: anyTransient,
		Reason:    reason,
	})
}

// handleConfirm routes a primary site's verdict to the waiting
// transaction or snapshot request.
func (s *Site) handleConfirm(m wire.Confirm) {
	if m.ReqID != 0 {
		if w, ok := s.confirmWaiters[m.ReqID]; ok {
			delete(s.confirmWaiters, m.ReqID)
			w(m)
		}
		return
	}
	st, ok := s.txns[m.TxnVT]
	if !ok || st.origin != s.id || st.status != txnWaiting {
		return
	}
	if s.obs.TraceEnabled() {
		verdict := "ok"
		if !m.OK {
			verdict = m.Reason
		}
		s.trace(obs.EvConfirm, m.TxnVT, m.From, verdict)
	}
	if m.OK {
		if _, expected := st.waitConfirms[m.From]; !expected && st.extraPending > 0 {
			// A confirmation raced ahead of the join reply that will
			// register it (paper §3.3 flow).
			if st.earlyConfirms == nil {
				st.earlyConfirms = map[vtime.SiteID]bool{}
			}
			st.earlyConfirms[m.From] = true
			return
		}
		delete(st.waitConfirms, m.From)
		s.checkTxnComplete(st)
		return
	}
	if st.extraPending > 0 {
		// Join in flight: record the denial; handleJoinReply aborts.
		if st.earlyConfirms == nil {
			st.earlyConfirms = map[vtime.SiteID]bool{}
		}
		st.earlyConfirms[m.From] = false
	}
	s.abortTxn(st, fmt.Sprintf("denied by %s: %s", m.From, m.Reason))
}

// handleOutcome records and applies a summary COMMIT/ABORT.
func (s *Site) handleOutcome(m wire.Outcome) {
	s.outcomes[m.TxnVT] = m.Committed
	st, ok := s.txns[m.TxnVT]
	if !ok {
		// Updates not yet arrived; they will be applied with the
		// recorded outcome (paper §3.1).
		s.resolveRC(m.TxnVT, m.Committed)
		return
	}
	switch st.status {
	case txnApplied:
		if m.Committed {
			st.commitApplied()
			st.status = txnCommitted
			s.resolveRC(m.TxnVT, true)
			s.onLocalCommit(st.appliedObjects(), m.TxnVT)
			s.obs.ObserveSince(s.stats.RemoteCommitLatency, st.appliedWall)
			s.trace(obs.EvCommit, m.TxnVT, st.origin, "remote")
			s.gcTxnObjects(st)
			if st.hasGraphOp {
				s.unparkRetries()
				s.afterGraphCommit(st)
			}
		} else {
			objs := st.appliedObjects()
			s.undoApplied(st)
			s.releaseReservations(st)
			st.status = txnAborted
			s.resolveRC(m.TxnVT, false)
			s.onLocalAbort(objs)
			s.trace(obs.EvAbort, m.TxnVT, st.origin, "remote")
		}
	case txnWaiting:
		// Originating site of a delegated transaction: the delegate
		// decided.
		if st.origin != s.id {
			return
		}
		if m.Committed {
			st.status = txnCommitted
			st.commitApplied()
			// The incoming Outcome is already logged; this adds the
			// synthesized Write with our own updates and bumps the floor.
			s.walLocalCommit(st, false)
			st.sentMsgs = nil
			s.resolveRC(m.TxnVT, true)
			s.onLocalCommit(st.appliedObjects(), m.TxnVT)
			s.stats.Commits.Add(1)
			s.trace(obs.EvCommit, m.TxnVT, 0, "delegated")
			s.stats.CommitLatencyVT.Observe(float64(s.clock.Now().Time - st.vt.Time))
			if st.handle != nil {
				s.obs.ObserveSince(s.stats.CommitLatency, st.handle.submittedWall)
				st.handle.finish(Result{Committed: true, Retries: st.retries, VT: st.vt})
			}
			s.gcTxnObjects(st)
		} else {
			// Delegate denied: undo and retry. The delegate has already
			// informed the other involved sites.
			if s.wal != nil {
				s.bumpSelfFloor(st.vt.Time)
			}
			st.sentMsgs = nil
			objs := st.appliedObjects()
			s.undoApplied(st)
			s.releaseReservations(st)
			st.status = txnAborted
			s.resolveRC(m.TxnVT, false)
			s.onLocalAbort(objs)
			s.stats.ConflictAborts.Add(1)
			s.trace(obs.EvAbort, m.TxnVT, 0, "delegate denied")
			if st.txn == nil || st.handle == nil {
				return
			}
			if st.retries+1 > s.opts.MaxRetries {
				st.handle.finish(Result{Err: fmt.Errorf("%w (%d attempts)", ErrTooManyRetries, st.retries+1), Retries: st.retries, VT: st.vt})
				return
			}
			s.stats.Retries.Add(1)
			s.trace(obs.EvReExecute, m.TxnVT, 0, "")
			txn, h, retries := st.txn, st.handle, st.retries+1
			s.doOrDrop(
				func() { s.execute(txn, h, retries) },
				func() { h.finish(Result{Err: ErrSiteStopped}) },
			)
		}
	default:
		// Already decided locally; nothing to do.
	}
}

// gcTxnObjects prunes histories of the objects a committed transaction
// touched.
func (s *Site) gcTxnObjects(st *txnState) {
	for _, o := range st.appliedObjects() {
		s.maybeGC(o)
	}
}

// applyUpdate applies one update from a remote transaction. It returns
// false when the update must block on a not-yet-received structural op.
func (s *Site) applyUpdate(st *txnState, upd wire.Update, status history.Status) bool {
	root, ok := s.objects[upd.Target]
	if !ok {
		s.log.Warn("update for unknown object", "target", upd.Target.String())
		return true // drop; cannot block on an unknown root
	}
	return s.applyOpRead(st, root, upd.Path, upd.Op, status, upd.ReadVT)
}

// applyOp applies op to the object at path below target, recording undo
// state in st. It returns false when blocked on missing structure.
func (s *Site) applyOp(st *txnState, target *object, path wire.Path, op wire.Op, status history.Status) bool {
	return s.applyOpRead(st, target, path, op, status, vtime.Zero)
}

// applyOpRead is applyOp carrying the writer's read time tR, recorded on
// scalar versions for the view engine's eager-confirmation test.
func (s *Site) applyOpRead(st *txnState, target *object, path wire.Path, op wire.Op, status history.Status, readVT vtime.VT) bool {
	obj := target
	if len(path) > 0 {
		// Application traverses tombstones: an update that validated at
		// the primary must apply at every replica even where a pending
		// local removal currently hides the element, so all replicas
		// converge whichever way the removal resolves.
		child, blocked := target.resolvePathForApply(path)
		if blocked {
			return false
		}
		if child == nil {
			s.log.Debug("update path unavailable", "path", path.String())
			return true
		}
		obj = child
	}
	vt := st.vt
	switch o := op.(type) {
	case wire.OpSet:
		if err := obj.hist.InsertRead(vt, o.Value, status, readVT); err != nil {
			s.log.Debug("duplicate update ignored", "obj", obj.id.String(), "vt", vt.String())
			return true
		}
		st.applied = append(st.applied, appliedUpdate{obj: obj, undo: func() { obj.hist.Abort(vt) }})
	case wire.OpAssoc:
		if err := obj.hist.InsertRead(vt, o.Relationships, status, readVT); err != nil {
			return true
		}
		st.applied = append(st.applied, appliedUpdate{obj: obj, undo: func() { obj.hist.Abort(vt) }})
	case wire.OpAdd:
		if err := obj.hist.InsertMerge(vt, status, readVT, mergeAdd(o.Delta)); err != nil {
			s.log.Debug("duplicate update ignored", "obj", obj.id.String(), "vt", vt.String())
			return true
		}
		st.applied = append(st.applied, appliedUpdate{obj: obj, undo: func() { obj.hist.Abort(vt) }})
	case wire.OpAssocInsert:
		if err := obj.hist.InsertMerge(vt, status, readVT, mergeRel(o.Rel)); err != nil {
			return true
		}
		st.applied = append(st.applied, appliedUpdate{obj: obj, undo: func() { obj.hist.Abort(vt) }})
	case wire.OpListInsertAfter:
		// Position comes solely from the After anchor and tag order, so
		// receivers can reuse the index-op applier, which already ignores
		// the (origin-only) Index field.
		eq := wire.OpListInsert{Tag: o.Tag, Child: o.Child, After: o.After}
		if !s.applyListInsert(st, obj, eq, status) {
			return false // the After element's insert not yet received
		}
	case wire.OpGraph:
		s.applyGraphOp(st, obj, o, status)
		st.hasGraphOp = true
		st.graphObjs = append(st.graphObjs, obj)
	case wire.OpListInsert:
		if !s.applyListInsert(st, obj, o, status) {
			return false // the After element's insert not yet received
		}
	case wire.OpListRemove:
		if !s.applyListRemove(st, obj, o, status) {
			return false // element's insert not yet received: block
		}
	case wire.OpTupleSet:
		s.applyTupleSet(st, obj, o, status)
	case wire.OpTupleRemove:
		if !s.applyTupleRemove(st, obj, o, status) {
			return false // entry's insert not yet received: block
		}
	default:
		s.log.Warn("unknown op", "type", fmt.Sprintf("%T", op))
	}
	s.drainPending(target.root())
	return true
}

// applyGraphOp replaces obj's replication graph at st.vt. The shipped
// graph may describe several components (a leave ships the relationship
// with the leaver disconnected); each replica keeps the component
// containing itself.
func (s *Site) applyGraphOp(st *txnState, obj *object, o wire.OpGraph, status history.Status) {
	newG := repgraph.FromWire(o.Graph)
	if newG.Has(obj.id) && !newG.Connected() {
		newG = newG.Component(obj.id)
	}
	if err := obj.graphHist.Insert(st.vt, newG, status); err != nil {
		return // duplicate
	}
	// The cached graph always mirrors the graph history's current
	// version, so out-of-order arrivals and rollbacks both resolve to
	// the latest surviving graph.
	obj.refreshGraph()
	vt := st.vt
	st.applied = append(st.applied, appliedUpdate{
		obj:    obj,
		undo:   func() { obj.graphHist.Abort(vt); obj.refreshGraph() },
		commit: func() { obj.graphHist.Commit(vt) },
	})
}

// recordCompositeVersion notes a structural change in the composite's own
// history (one version per transaction, accumulating ops).
func (s *Site) recordCompositeVersion(st *txnState, comp *object, op wire.Op, status history.Status) {
	if v, ok := comp.hist.Get(st.vt); ok {
		ops, _ := v.Value.([]wire.Op)
		comp.hist.SetValue(st.vt, append(ops, op))
		return
	}
	vt := st.vt
	if err := comp.hist.Insert(vt, []wire.Op{op}, status); err != nil {
		return
	}
	st.applied = append(st.applied, appliedUpdate{obj: comp, undo: func() { comp.hist.Abort(vt) }})
}

// applyListInsert embeds a new child element into a list, positioning it
// deterministically so all replicas converge (RGA-style: after the After
// element, before any concurrent sibling with a smaller tag). It returns
// false (blocked) when the After element's insert has not yet arrived
// (paper §3.2.1: propagation blocks until the earlier structural update
// is received).
func (s *Site) applyListInsert(st *txnState, lst *object, o wire.OpListInsert, status history.Status) bool {
	if lst.kind != KindList {
		s.log.Warn("list insert on non-list", "obj", lst.id.String())
		return true
	}
	if i, _ := lst.findChildByTag(o.Tag); i >= 0 {
		return true // duplicate delivery
	}
	pos := 0
	if !o.After.IsZero() {
		ai, _ := lst.findChildByTag(o.After)
		if ai < 0 {
			return false // causal dependency missing: block
		}
		pos = ai + 1
	}
	child := s.newChildObject(lst, wire.PathElem{Tag: o.Tag}, o.Child)
	elem := listElem{tag: o.Tag, child: child, insertVT: st.vt}
	// Skip over concurrent inserts with greater tags (deterministic
	// total order regardless of arrival order).
	for pos < len(lst.elems) && tagLess(o.Tag, lst.elems[pos].tag) {
		pos++
	}
	lst.elems = append(lst.elems, listElem{})
	copy(lst.elems[pos+1:], lst.elems[pos:])
	lst.elems[pos] = elem

	s.recordCompositeVersion(st, lst, o, status)
	tag := o.Tag
	childID := child.id
	st.applied = append(st.applied, appliedUpdate{obj: lst, undo: func() {
		if i, _ := lst.findChildByTag(tag); i >= 0 {
			lst.elems = append(lst.elems[:i], lst.elems[i+1:]...)
		}
		delete(s.objects, childID)
	}})
	return true
}

// tagLess orders element tags by (VT, ordinal).
func tagLess(a, b wire.ElemTag) bool {
	if a.VT != b.VT {
		return a.VT.Less(b.VT)
	}
	return a.N < b.N
}

// applyListRemove tombstones a list element. It returns false (blocked)
// when the element's insert has not yet arrived. Concurrent removals from
// several sites accumulate independently so an abort of one leaves the
// others in force at every replica.
func (s *Site) applyListRemove(st *txnState, lst *object, o wire.OpListRemove, status history.Status) bool {
	_, le := lst.findChildByTag(o.Tag)
	if le == nil {
		return false
	}
	for _, r := range le.removals {
		if r == st.vt {
			return true // duplicate delivery
		}
	}
	le.removals = append(le.removals, st.vt)
	s.recordCompositeVersion(st, lst, o, status)
	tag := o.Tag
	vt := st.vt
	st.applied = append(st.applied, appliedUpdate{obj: lst, undo: func() {
		if _, l := lst.findChildByTag(tag); l != nil {
			for i, r := range l.removals {
				if r == vt {
					l.removals = append(l.removals[:i], l.removals[i+1:]...)
					break
				}
			}
		}
	}})
	return true
}

// applyTupleSet embeds a child under a key. Concurrent sets of the same
// key coexist as separate entries; visibility picks the greatest insert
// VT, so every replica converges on the same winner regardless of
// arrival order (add-wins).
func (s *Site) applyTupleSet(st *txnState, tup *object, o wire.OpTupleSet, status history.Status) {
	if tup.kind != KindTuple {
		s.log.Warn("tuple set on non-tuple", "obj", tup.id.String())
		return
	}
	// At pins the entry identity when a join ships existing structure;
	// otherwise the inserting transaction's VT is the identity.
	insertVT := st.vt
	if !o.At.IsZero() {
		insertVT = o.At
	}
	// Idempotence: a duplicate delivery inserted this entry already.
	if _, ent := tup.findEntryAt(o.Key, insertVT); ent != nil {
		return
	}
	link := wire.PathElem{IsKey: true, Key: o.Key, Tag: wire.ElemTag{VT: insertVT}}
	child := s.newChildObject(tup, link, o.Child)
	tup.entries = append(tup.entries, tupleEntry{key: o.Key, child: child, insertVT: insertVT})

	s.recordCompositeVersion(st, tup, o, status)
	key := o.Key
	childID := child.id
	vt := insertVT
	st.applied = append(st.applied, appliedUpdate{obj: tup, undo: func() {
		for i := len(tup.entries) - 1; i >= 0; i-- {
			if tup.entries[i].key == key && tup.entries[i].insertVT == vt {
				tup.entries = append(tup.entries[:i], tup.entries[i+1:]...)
				break
			}
		}
		delete(s.objects, childID)
	}})
}

// applyTupleRemove tombstones the specific entry (key, Of). It returns
// false (blocked) when that entry's insert has not yet arrived.
func (s *Site) applyTupleRemove(st *txnState, tup *object, o wire.OpTupleRemove, status history.Status) bool {
	_, ent := tup.findEntryAt(o.Key, o.Of)
	if ent == nil {
		return false
	}
	for _, r := range ent.removals {
		if r == st.vt {
			return true // duplicate delivery
		}
	}
	ent.removals = append(ent.removals, st.vt)
	s.recordCompositeVersion(st, tup, o, status)
	vt := st.vt
	key, of := o.Key, o.Of
	st.applied = append(st.applied, appliedUpdate{obj: tup, undo: func() {
		if _, e := tup.findEntryAt(key, of); e != nil {
			for i, r := range e.removals {
				if r == vt {
					e.removals = append(e.removals[:i], e.removals[i+1:]...)
					break
				}
			}
		}
	}})
	return true
}

// drainPending retries indirect updates blocked on structure below root,
// applying any that have become resolvable (paper §3.2.1).
func (s *Site) drainPending(root *object) {
	for len(root.pending) > 0 {
		// Detach the queue before applying anything: applyOp re-enters
		// drainPending from its tail (an applied structural op can
		// unblock further indirect updates), and a re-entrant pass over
		// a shared queue finds the very entry the outer frame is midway
		// through applying, applies it again (the duplicate is ignored),
		// re-enters, and so on — unbounded mutual recursion that
		// overflows the stack. Found by the simulation sweep: profile
		// fastpath-faulty, seed 93. Detached, every frame owns exactly
		// the entries it took; still-blocked ones are re-appended for
		// the next pass (here or in an outer frame).
		pending := root.pending
		root.pending = nil
		progress := false
		for _, p := range pending {
			if known, ok := s.outcomes[p.txnVT]; ok && !known {
				progress = true
				continue // aborted while blocked
			}
			_, _, blocked := root.resolvePath(p.upd.Path)
			if blocked {
				root.pending = append(root.pending, p)
				continue
			}
			st := s.ensureTxn(p.txnVT, p.origin)
			status := history.Pending
			if known, ok := s.outcomes[p.txnVT]; ok && known {
				status = history.Committed
			}
			s.applyOp(st, root, p.upd.Path, p.upd.Op, status)
			s.scheduleOptimistic([]*object{root})
			if status == history.Committed {
				s.onLocalCommit(st.appliedObjects(), p.txnVT)
			}
			if st.blockedRemaining > 0 {
				st.blockedRemaining--
				if st.blockedRemaining == 0 && st.onUnblocked != nil {
					cont := st.onUnblocked
					st.onUnblocked = nil
					cont()
				}
			}
			progress = true
		}
		if !progress {
			break
		}
	}
}
