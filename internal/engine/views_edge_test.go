package engine

import (
	"sync"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// Edge cases of the view-notification protocol (paper §4) beyond the
// happy paths in views_test.go.

func TestAttachRequiresUpdateCallback(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	ref, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	if _, err := h.site(1).AttachView([]ObjRef{ref}, Optimistic, ViewFuncs{}); err == nil {
		t.Fatal("attach without Update callback succeeded")
	}
}

func TestOptimisticCommitQuiescence(t *testing.T) {
	// "An optimistic view gets a commit notification only when the system
	// quiesces" (paper §4.1): under a rapid burst, intermediate snapshots
	// are superseded; after the burst, exactly the final state is shown
	// and a commit notification arrives for it.
	h := newHarness(t, 2, transport.Config{Latency: 5 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	rec := &recorder{}
	if _, err := h.site(2).AttachView([]ObjRef{refs[2]}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}

	const burst = 5
	var handles []*Handle
	for k := 1; k <= burst; k++ {
		v := int64(k)
		handles = append(handles, h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
			return tx.Write(refs[2], v)
		}}))
	}
	for _, hd := range handles {
		if r := hd.Wait(); !r.Committed {
			t.Fatalf("burst write failed: %+v", r)
		}
	}
	h.eventually(2*time.Second, "final state shown and committed", func() bool {
		ups, commits := rec.snapshot()
		if len(ups) == 0 || commits == 0 {
			return false
		}
		return ups[len(ups)-1].Values[refs[2].ID()] == int64(burst)
	})
}

func TestOptimisticViewWithoutCommitCallback(t *testing.T) {
	// Commit is optional on optimistic views.
	h := newHarness(t, 1, transport.Config{})
	ref, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	var mu sync.Mutex
	var last int64 = -1
	_, err := h.site(1).AttachView([]ObjRef{ref}, Optimistic, ViewFuncs{
		Update: func(d SnapshotData) {
			mu.Lock()
			last, _ = d.Values[ref.ID()].(int64)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.setInt(1, ref, 1); !res.Committed {
		t.Fatal("write failed")
	}
	// Delivery is lossy (latest-only), so assert on the observed value.
	h.eventually(time.Second, "update delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return last == 1
	})
}

func TestPessimisticMultiObjectAtomicity(t *testing.T) {
	// A transaction updating two attached objects yields ONE pessimistic
	// notification showing both new values (snapshots are atomic,
	// paper §2.5) — never a torn snapshot with one old and one new value
	// from the same transaction... except values written at distinct VTs
	// by different transactions, which arrive as separate snapshots.
	h := newHarness(t, 2, transport.Config{Latency: 2 * time.Millisecond})
	a := h.joined(KindInt, "a", int64(0), 1, 2)
	b := h.joined(KindInt, "b", int64(0), 1, 2)

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{a[1], b[1]}, Pessimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= 5; k++ {
		v := int64(k)
		if res := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
			if err := tx.Write(a[2], v); err != nil {
				return err
			}
			return tx.Write(b[2], v)
		}}).Wait(); !res.Committed {
			t.Fatalf("write %d failed", k)
		}
	}
	h.eventually(3*time.Second, "final notification", func() bool {
		ups, _ := rec.snapshot()
		if len(ups) == 0 {
			return false
		}
		last := ups[len(ups)-1]
		return last.Values[a[1].ID()] == int64(5) && last.Values[b[1].ID()] == int64(5)
	})
	// Atomicity: in every snapshot the two values are equal (they are
	// always written together).
	ups, _ := rec.snapshot()
	for i, u := range ups {
		av, bv := u.Values[a[1].ID()], u.Values[b[1].ID()]
		if av != bv {
			t.Fatalf("torn snapshot %d: a=%v b=%v", i, av, bv)
		}
	}
}

func TestLostUpdateAccounting(t *testing.T) {
	// A straggler update older than the current optimistic snapshot is
	// counted as lost, not notified (paper §4.1, §5.1.2): site 3's write
	// dawdles on its way to site 1 and arrives after site 2's newer
	// write has already been shown there.
	h := newHarness(t, 3, transport.Config{LatencyFn: func(from, to vtime.SiteID) time.Duration {
		if from == 3 && to == 1 {
			return 40 * time.Millisecond
		}
		return time.Millisecond
	}})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	rec := &recorder{}
	if _, err := h.site(1).AttachView([]ObjRef{refs[1]}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	before := h.site(1).Stats().LostUpdates

	// Site 3 writes once (slow link to site 1); site 2 then writes five
	// times, so its final virtual time strictly exceeds site 3's — when
	// 33 finally reaches site 1 it is a straggler below the shown value.
	h3 := h.setInt2Async(3, refs[3], 33)
	time.Sleep(5 * time.Millisecond)
	for v := int64(21); v <= 25; v++ {
		if r := h.setInt(2, refs[2], v); !r.Committed {
			t.Fatalf("w%d: %+v", v, r)
		}
	}
	if r := h3.Wait(); !r.Committed {
		t.Fatalf("w3: %+v", r)
	}

	h.eventually(3*time.Second, "straggler counted lost", func() bool {
		return h.site(1).Stats().LostUpdates > before
	})
	// The view's final state is the newest value; the straggler's value
	// was never separately notified after the newer one.
	h.eventually(3*time.Second, "final value is the newest", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) > 0 && ups[len(ups)-1].Values[refs[1].ID()] == int64(25)
	})
	ups, _ := rec.snapshot()
	saw25 := false
	for _, u := range ups {
		if u.Values[refs[1].ID()] == int64(25) {
			saw25 = true
		}
		if saw25 && u.Values[refs[1].ID()] == int64(33) {
			t.Fatal("straggler notified after the newer value (should be lost)")
		}
	}
}
