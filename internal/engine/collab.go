package engine

import (
	"fmt"
	"strconv"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/obs"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Dynamic collaboration establishment (paper §2.6, §3.3): association
// objects hold sets of replica relationships; invitations are external
// tokens granting the right to replicate; the join protocol merges
// replication graphs with confirmations from both graphs' primaries.

// Invitation is the external token publicizing the right to make replicas
// of an application's objects (paper §2.6). It is plain data: publish it
// on any out-of-band channel.
type Invitation struct {
	Site  vtime.SiteID
	Assoc ids.ObjectID
	Desc  string
}

// CreateAssociation creates an association model object at this site.
func (s *Site) CreateAssociation(desc string) (ObjRef, error) {
	return s.CreateObject(KindAssociation, desc, []wire.Relationship(nil))
}

// Invite creates the external token for an association.
func (s *Site) Invite(assoc ObjRef, desc string) (Invitation, error) {
	if assoc.o == nil || assoc.o.kind != KindAssociation {
		return Invitation{}, fmt.Errorf("%w: Invite requires an association", ErrWrongKind)
	}
	return Invitation{Site: s.id, Assoc: assoc.o.id, Desc: desc}, nil
}

// relationships reads an association object's current value.
func assocValue(o *object) []wire.Relationship {
	cur, ok := o.hist.Current()
	if !ok {
		return nil
	}
	rels, _ := cur.Value.([]wire.Relationship)
	return rels
}

// cloneRels deep-copies a relationship list for safe modification.
func cloneRels(rels []wire.Relationship) []wire.Relationship {
	out := make([]wire.Relationship, len(rels))
	for i, r := range rels {
		out[i] = wire.Relationship{Name: r.Name, Members: append([]wire.Member(nil), r.Members...)}
	}
	return out
}

// DefineRelationship adds (or extends) a named replica relationship in an
// association, registering member as a joined object. It runs as a normal
// transaction on the association object.
func (s *Site) DefineRelationship(assoc ObjRef, name string, member ObjRef, memberDesc string) *Handle {
	return s.Submit(&Txn{
		Name: "define-relationship",
		Execute: func(tx *Tx) error {
			if assoc.o == nil || assoc.o.kind != KindAssociation {
				return fmt.Errorf("%w: not an association", ErrWrongKind)
			}
			if member.o == nil {
				return ErrInvalidRef
			}
			cur, _ := tx.Read(assoc)
			rels, _ := cur.([]wire.Relationship)
			rels = cloneRels(rels)
			m := wire.Member{Site: s.id, Obj: member.o.id, Desc: memberDesc}
			found := false
			for i := range rels {
				if rels[i].Name == name {
					rels[i].Members = append(rels[i].Members, m)
					found = true
				}
			}
			if !found {
				rels = append(rels, wire.Relationship{Name: name, Members: []wire.Member{m}})
			}
			tx.WriteScalar(assoc.o, rels)
			return nil
		},
	})
}

// Relationships returns the association's current relationships.
func (s *Site) Relationships(assoc ObjRef) ([]wire.Relationship, error) {
	if assoc.o == nil || assoc.o.kind != KindAssociation {
		return nil, fmt.Errorf("%w: not an association", ErrWrongKind)
	}
	var out []wire.Relationship
	err := s.call(func() { out = cloneRels(assocValue(assoc.o)) })
	return out, err
}

// joinState tracks an in-flight join at the joining site.
type joinState struct {
	st    *txnState
	local *object
	// newRef receives the resulting local ref for ImportAssociation.
	onValue func(any)
}

// ImportAssociation instantiates a local association object replicating
// the one named by an invitation (paper §2.6: "Application B must then
// import this invitation and use it to instantiate its own association
// object"). The returned handle resolves when the underlying join
// transaction commits; the ObjRef is usable immediately.
func (s *Site) ImportAssociation(inv Invitation, desc string) (ObjRef, *Handle, error) {
	local, err := s.CreateAssociation(desc)
	if err != nil {
		return ObjRef{}, nil, err
	}
	h := newHandle()
	s.doOrDrop(
		func() { s.startJoin(h, local.o, inv.Site, inv.Assoc, nil, "") },
		func() { h.finish(Result{Err: ErrSiteStopped}) },
	)
	return local, h, nil
}

// JoinObject joins a local object directly into a remote object's replica
// relationship, given an out-of-band reference (site and object ID). This
// is the object-level §3.3 protocol without an association; applications
// normally use associations (ImportAssociation / JoinRelationship).
func (s *Site) JoinObject(local ObjRef, remoteSite vtime.SiteID, remoteObj ids.ObjectID) *Handle {
	h := newHandle()
	s.doOrDrop(
		func() {
			if local.o == nil {
				h.finish(Result{Err: fmt.Errorf("%w: invalid local object", ErrAborted)})
				return
			}
			s.startJoin(h, local.o, remoteSite, remoteObj, nil, "")
		},
		func() { h.finish(Result{Err: ErrSiteStopped}) },
	)
	return h
}

// JoinRelationship joins obj into the named replica relationship of a
// (locally replicated) association: the §3.3 protocol. The association
// value is read to find a member object B, optimistically updated to
// record the new member, and the object-level graph merge runs between
// obj and B.
func (s *Site) JoinRelationship(assoc ObjRef, relName string, obj ObjRef) *Handle {
	h := newHandle()
	s.doOrDrop(func() {
		if assoc.o == nil || assoc.o.kind != KindAssociation || obj.o == nil {
			h.finish(Result{Err: fmt.Errorf("%w: join needs an association and an object", ErrAborted)})
			return
		}
		rels := assocValue(assoc.o)
		var target *wire.Member
		for i := range rels {
			if rels[i].Name == relName {
				for j := range rels[i].Members {
					m := &rels[i].Members[j]
					if m.Obj != obj.o.id {
						target = m
						break
					}
				}
			}
		}
		if target == nil {
			h.finish(Result{Err: fmt.Errorf("%w: relationship %q has no joinable member", ErrAborted, relName)})
			return
		}
		s.startJoin(h, obj.o, target.Site, target.Obj, assoc.o, relName)
	}, func() { h.finish(Result{Err: ErrSiteStopped}) })
	return h
}

// startJoin begins the join transaction at the joining site (paper §3.3).
// assoc (optional) is the local association replica to update with the
// new membership as part of the same atomic transaction.
func (s *Site) startJoin(h *Handle, local *object, remoteSite vtime.SiteID, remoteObj ids.ObjectID, assoc *object, relName string) {
	// Joins are locally originated transactions like any other: they
	// must enter the Submitted count (they already enter Commits /
	// ConflictAborts / Retries) or the quiescent accounting identity
	// Submitted == Commits + ProgrammedAborts + abandoned breaks.
	s.stats.Submitted.Add(1)
	h.submittedWall = s.obs.NowNanos()
	s.startJoinAttempt(h, local, remoteSite, remoteObj, assoc, relName, 0)
}

// startJoinAttempt runs one (re-)execution of the join transaction.
func (s *Site) startJoinAttempt(h *Handle, local *object, remoteSite vtime.SiteID, remoteObj ids.ObjectID, assoc *object, relName string, retries int) {
	if local.graph == nil {
		// An embedded object must first switch to direct propagation
		// (paper §3.2.2) before it can join external objects.
		ph := newHandle()
		s.startPromote(local, ph)
		go func() {
			select {
			case res := <-ph.Done():
				if !res.Committed {
					h.finish(Result{Err: fmt.Errorf("%w: promotion before join failed: %v", ErrAborted, res.Err)})
					return
				}
				s.doOrDrop(
					func() { s.startJoinAttempt(h, local, remoteSite, remoteObj, assoc, relName, retries) },
					func() { h.finish(Result{Err: ErrSiteStopped}) },
				)
			case <-s.stop:
				h.finish(Result{Err: ErrSiteStopped})
			}
		}()
		return
	}
	vt := s.clock.Next()
	st := &txnState{
		vt:           vt,
		origin:       s.id,
		status:       txnWaiting,
		handle:       h,
		rcDeps:       map[vtime.VT]bool{},
		waitConfirms: map[vtime.SiteID]bool{},
		involved:     map[vtime.SiteID]bool{s.id: true},
		retries:      retries,
	}
	st.retryFn = func(r int) {
		s.startJoinAttempt(h, local, remoteSite, remoteObj, assoc, relName, r)
	}
	s.txns[vt] = st
	h.markApplied()
	if s.obs.TraceEnabled() {
		if retries == 0 {
			s.trace(obs.EvSubmit, vt, 0, "join")
		}
		s.trace(obs.EvExecute, vt, 0, "attempt "+strconv.Itoa(retries+1))
	}

	// Step 1: read and optimistically update the association value
	// (treated like any other read+update, confirmed by the
	// association's primary copy).
	if assoc != nil {
		cur, ok := assoc.hist.Current()
		readVT := vtime.Zero
		if ok {
			readVT = cur.VT
			if cur.Status == history.Pending {
				st.rcDeps[cur.VT] = true
			}
		}
		rels := cloneRels(assocValue(assoc))
		for i := range rels {
			if rels[i].Name == relName {
				rels[i].Members = append(rels[i].Members, wire.Member{Site: s.id, Obj: local.id, Desc: local.desc})
			}
		}
		s.applyOp(st, assoc, nil, wire.OpAssoc{Relationships: rels}, history.Pending)
		s.propagateAssocUpdate(st, assoc, readVT, rels)
	}

	// Step 2: the remote call to B carrying gA.
	reqID := s.newReqID()
	s.joins[reqID] = &joinState{st: st, local: local}
	st.extraPending++ // the JoinReply itself
	s.send(remoteSite, wire.JoinRequest{
		TxnVT:  vt,
		Origin: s.id,
		ReqID:  reqID,
		AObj:   local.id,
		BObj:   remoteObj,
		GraphA: local.graph.ToWire(),
	})
	st.involved[remoteSite] = true
}

// propagateAssocUpdate sends the association-value update to the
// association's replicas with confirmation from its primary.
func (s *Site) propagateAssocUpdate(st *txnState, assoc *object, readVT vtime.VT, rels []wire.Relationship) {
	g := assoc.graph
	if g == nil || g.NumNodes() <= 1 {
		return
	}
	primaryNode, _ := g.Primary()
	primarySite, _ := g.SiteOf(primaryNode)
	for _, node := range g.Nodes() {
		nodeSite, _ := g.SiteOf(node)
		if node == assoc.id {
			continue
		}
		st.involved[nodeSite] = true
		s.send(nodeSite, wire.Write{
			TxnVT:  st.vt,
			Origin: s.id,
			Updates: []wire.Update{{
				Target:  node,
				ReadVT:  readVT,
				GraphVT: assoc.graphVT,
				Op:      wire.OpAssoc{Relationships: rels},
			}},
			NeedsConfirm: nodeSite == primarySite,
		})
	}
	if primarySite == s.id {
		if ok, reason := s.primaryCheck(assoc, assoc, readVT, assoc.graphVT, st.vt, true, false); !ok {
			st.denied = true
			st.deniedReason = reason
		} else {
			st.reservedObjs = append(st.reservedObjs, assoc)
		}
	} else {
		st.waitConfirms[primarySite] = true
	}
}

// handleJoinRequest runs B's side of the join (paper §3.3): merge gA and
// gB, apply and propagate the merged graph to B's replicas (confirmed by
// gB's primary on A's behalf), and return B's value and graph to A.
func (s *Site) handleJoinRequest(from vtime.SiteID, m wire.JoinRequest) {
	deny := func(reason string) {
		s.send(from, wire.JoinReply{TxnVT: m.TxnVT, ReqID: m.ReqID, From: s.id, OK: false, Reason: reason})
	}
	denyRetryable := func(reason string) {
		s.send(from, wire.JoinReply{TxnVT: m.TxnVT, ReqID: m.ReqID, From: s.id, OK: false, Reason: reason, Retryable: true})
	}
	b, ok := s.objects[m.BObj]
	if !ok {
		deny(fmt.Sprintf("object %s unknown at %s", m.BObj, s.id))
		return
	}
	if err := s.authorize(AuthJoin, b, m.Origin); err != nil {
		deny(err.Error())
		return
	}
	if b.graph == nil {
		if b.parent == nil {
			deny(fmt.Sprintf("object %s has no replication graph", m.BObj))
			return
		}
		// An embedded invitee switches to direct propagation first
		// (paper §3.2.2), then the join proceeds.
		ph := newHandle()
		s.startPromote(b, ph)
		msg := m
		origin := from
		go func() {
			select {
			case res := <-ph.Done():
				if !res.Committed {
					s.do(func() {
						s.send(origin, wire.JoinReply{
							TxnVT: msg.TxnVT, ReqID: msg.ReqID, From: s.id,
							OK: false, Reason: fmt.Sprintf("promotion failed: %v", res.Err),
						})
					})
					return
				}
				s.do(func() { s.handleJoinRequest(origin, msg) })
			case <-s.stop:
			}
		}()
		return
	}
	gA := repgraph.FromWire(m.GraphA)
	if !gA.Has(m.AObj) {
		deny("joiner graph does not contain the joining object")
		return
	}

	// The join executes at the joiner's pre-assigned VT, but the state it
	// merges is read HERE. A joiner whose clock lags (first contact)
	// could stamp the merged graph below the current version, making it
	// invisible; deny and let the retry pick up this site's clock from
	// the reply's Lamport stamp.
	if cur, okc := b.hist.Current(); okc && m.TxnVT.LessEq(cur.VT) {
		denyRetryable(fmt.Sprintf("stale VT %s <= value at %s", m.TxnVT, cur.VT))
		return
	}
	if m.TxnVT.LessEq(b.graphVT) {
		denyRetryable(fmt.Sprintf("stale VT %s <= graph at %s", m.TxnVT, b.graphVT))
		return
	}

	st := s.ensureTxn(m.TxnVT, m.Origin)

	oldGraph := b.graph
	oldGraphVT := b.graphVT
	var pendingGraphTxn vtime.VT
	if gcur, okc := b.graphHist.Current(); okc && gcur.Status == history.Pending {
		// A must additionally wait for the transaction that wrote gB
		// (paper §3.3: "this fact is remembered at B"). A was not an
		// involved site of that transaction, so B forwards its outcome.
		pendingGraphTxn = gcur.VT
		dep, joiner := gcur.VT, m.Origin
		s.rcWaiters[dep] = append(s.rcWaiters[dep], func(committed bool) {
			s.send(joiner, wire.Outcome{TxnVT: dep, Committed: committed})
		})
	}

	merged := oldGraph.Clone()
	merged.Merge(gA)
	if err := merged.AddEdge(m.AObj, m.BObj); err != nil {
		deny(fmt.Sprintf("graph merge: %v", err))
		return
	}

	// Apply the merged graph to B locally (optimistically) and ship it to
	// B's former replicas; gB's primary confirms directly to A.
	s.applyOp(st, b, nil, wire.OpGraph{Graph: merged.ToWire()}, history.Pending)

	primaryNode, _ := oldGraph.Primary()
	primarySite, _ := oldGraph.SiteOf(primaryNode)
	if primarySite == s.id {
		// gB's primary is B's own site: validate here, BEFORE any
		// propagation, and fold the verdict into the reply (no separate
		// confirmation message).
		groot := b.replicationRoot()
		iv := vtime.Interval{Lo: oldGraphVT, Hi: m.TxnVT}
		if groot.graphHist.HasVersionIn(iv, m.TxnVT) {
			s.undoApplied(st)
			denyRetryable(fmt.Sprintf("RL: graph change in %s", iv))
			return
		}
		if groot.graphRes.Conflicts(m.TxnVT, m.TxnVT) {
			s.undoApplied(st)
			denyRetryable("NC: graph reservation conflict")
			return
		}
		groot.graphRes.Reserve(iv, m.TxnVT)
		st.reservedObjs = append(st.reservedObjs, b)
	}
	var confirmSites []vtime.SiteID
	for _, node := range oldGraph.Nodes() {
		nodeSite, _ := oldGraph.SiteOf(node)
		if node == b.id || nodeSite == m.Origin {
			continue
		}
		if nodeSite == s.id {
			if sib, okSib := s.objects[node]; okSib {
				s.applyOp(st, sib, nil, wire.OpGraph{Graph: merged.ToWire()}, history.Pending)
			}
			continue
		}
		s.send(nodeSite, wire.Write{
			TxnVT:  m.TxnVT,
			Origin: m.Origin, // confirmations flow to the joiner
			Updates: []wire.Update{{
				Target:  node,
				ReadVT:  oldGraphVT,
				GraphVT: oldGraphVT,
				Op:      wire.OpGraph{Graph: merged.ToWire()},
			}},
			NeedsConfirm: nodeSite == primarySite,
		})
		if nodeSite == primarySite {
			confirmSites = append(confirmSites, nodeSite)
		}
	}

	s.send(from, wire.JoinReply{
		TxnVT:           m.TxnVT,
		ReqID:           m.ReqID,
		From:            s.id,
		OK:              true,
		BObj:            m.BObj,
		BValue:          snapshotValue(b),
		GraphB:          merged.ToWire(),
		PendingGraphTxn: pendingGraphTxn,
		ConfirmSites:    confirmSites,
	})
}

// snapshotValue captures b's current value for shipment to the joiner.
func snapshotValue(b *object) any {
	if b.isComposite() {
		return compositeSnapshot(b)
	}
	cur, ok := b.hist.Current()
	if !ok {
		return defaultValue(b.kind)
	}
	return cur.Value
}

// compositeSnapshot serializes a composite's live structure.
func compositeSnapshot(b *object) wire.CompositeSnapshot {
	snap := wire.CompositeSnapshot{Kind: b.kind}
	at := b.latestVT()
	switch b.kind {
	case KindList:
		for _, i := range b.visibleElems(at, false) {
			e := &b.elems[i]
			snap.Elems = append(snap.Elems, snapshotElem(e.child, e.tag, ""))
		}
	case KindTuple:
		for _, i := range b.visibleEntries(at, false) {
			e := &b.entries[i]
			// The tag carries the entry's original insert identity so
			// pinned paths resolve at the new replica.
			snap.Elems = append(snap.Elems, snapshotElem(e.child, wire.ElemTag{VT: e.insertVT}, e.key))
		}
	}
	return snap
}

func snapshotElem(child *object, tag wire.ElemTag, key string) wire.SnapshotElem {
	el := wire.SnapshotElem{Tag: tag, Key: key}
	if child.isComposite() {
		nested := compositeSnapshot(child)
		el.Child = wire.ChildDecl{Kind: child.kind}
		el.Nested = &nested
		return el
	}
	cur, _ := child.hist.Current()
	el.Child = wire.ChildDecl{Kind: child.kind, Value: cur.Value}
	return el
}

// handleJoinReply completes the join at the joining site.
func (s *Site) handleJoinReply(m wire.JoinReply) {
	js, ok := s.joins[m.ReqID]
	if !ok {
		return
	}
	delete(s.joins, m.ReqID)
	st := js.st
	if st.status != txnWaiting {
		return
	}
	st.extraPending--
	if !m.OK {
		if m.Retryable {
			// An ordinary concurrency-control conflict: undo and retry
			// with a fresh virtual time, like any other transaction.
			s.abortTxn(st, fmt.Sprintf("join conflict: %s", m.Reason))
			return
		}
		s.abortJoin(st, fmt.Sprintf("join denied: %s", m.Reason))
		return
	}

	merged := repgraph.FromWire(m.GraphB)
	local := js.local
	oldGraph := local.graph
	oldGraphVT := local.graphVT

	// Apply merged graph and B's value locally.
	s.applyOp(st, local, nil, wire.OpGraph{Graph: m.GraphB}, history.Pending)
	s.applyJoinedValue(st, local, m.BValue)

	// Propagate graph + value to A's former replicas, confirmed by gA's
	// primary.
	primaryNode, hasPrim := oldGraph.Primary()
	var primarySite vtime.SiteID = s.id
	if hasPrim {
		primarySite, _ = oldGraph.SiteOf(primaryNode)
	}
	for _, node := range oldGraph.Nodes() {
		nodeSite, _ := oldGraph.SiteOf(node)
		if node == local.id {
			continue
		}
		st.involved[nodeSite] = true
		updates := []wire.Update{
			{Target: node, ReadVT: oldGraphVT, GraphVT: oldGraphVT, Op: wire.OpGraph{Graph: m.GraphB}},
			{Target: node, ReadVT: st.vt, GraphVT: oldGraphVT, Op: valueOpFor(local.kind, m.BValue)},
		}
		s.send(nodeSite, wire.Write{
			TxnVT:        st.vt,
			Origin:       s.id,
			Updates:      updates,
			NeedsConfirm: nodeSite == primarySite,
		})
		if nodeSite == primarySite {
			st.waitConfirms[nodeSite] = true
		}
	}
	if primarySite == s.id && hasPrim && oldGraph.NumNodes() > 1 {
		iv := vtime.Interval{Lo: oldGraphVT, Hi: st.vt}
		if local.graphHist.HasVersionIn(iv, st.vt) || local.graphRes.Conflicts(st.vt, st.vt) {
			s.abortJoin(st, "gA primary denied graph update")
			return
		}
		local.graphRes.Reserve(iv, st.vt)
		st.reservedObjs = append(st.reservedObjs, local)
	}

	// Every member of the merged graph is involved in the outcome.
	for _, site := range merged.Sites() {
		st.involved[site] = true
	}
	// Wait for the confirmations B requested on our behalf.
	for _, site := range m.ConfirmSites {
		if site != s.id {
			st.waitConfirms[site] = true
		}
	}
	// Apply any confirms that raced ahead of the reply (sorted: the
	// deny-abort below must pick the same site deterministically).
	for _, from := range sortedSites(st.earlyConfirms) {
		if st.earlyConfirms[from] {
			delete(st.waitConfirms, from)
		} else {
			s.abortJoin(st, fmt.Sprintf("denied by %s", from))
			return
		}
	}
	// RC guess on B's uncommitted graph (paper §3.3).
	if !m.PendingGraphTxn.IsZero() {
		st.rcDeps[m.PendingGraphTxn] = true
	}
	s.registerRCDeps(st)
	s.checkTxnComplete(st)
}

// applyJoinedValue installs B's shipped value into the local replica.
func (s *Site) applyJoinedValue(st *txnState, local *object, value any) {
	switch v := value.(type) {
	case wire.CompositeSnapshot:
		s.applySnapshot(st, local, v)
	case []wire.Relationship:
		s.applyOp(st, local, nil, wire.OpAssoc{Relationships: v}, history.Pending)
	default:
		s.applyOp(st, local, nil, wire.OpSet{Value: v}, history.Pending)
	}
}

// valueOpFor wraps a joined value in the right op for further propagation.
func valueOpFor(kind Kind, value any) wire.Op {
	if rels, ok := value.([]wire.Relationship); ok {
		return wire.OpAssoc{Relationships: rels}
	}
	return wire.OpSet{Value: value}
}

// applySnapshot reconstructs a composite's structure from a shipped
// snapshot, reusing the original element tags so paths stay global.
func (s *Site) applySnapshot(st *txnState, comp *object, snap wire.CompositeSnapshot) {
	for _, el := range snap.Elems {
		var op wire.Op
		switch comp.kind {
		case KindList:
			op = wire.OpListInsert{Tag: el.Tag, Child: el.Child, After: lastTag(comp)}
		case KindTuple:
			op = wire.OpTupleSet{Key: el.Key, Child: el.Child, At: el.Tag.VT}
		default:
			continue
		}
		s.applyOp(st, comp, nil, op, history.Pending)
		var child *object
		if comp.kind == KindList {
			if _, le := comp.findChildByTag(el.Tag); le != nil {
				child = le.child
			}
		} else {
			if _, ent := comp.findEntryAt(el.Key, el.Tag.VT); ent != nil {
				child = ent.child
			} else if _, ent := comp.findEntry(el.Key); ent != nil {
				child = ent.child
			}
		}
		if child != nil && el.Nested != nil {
			s.applySnapshot(st, child, *el.Nested)
		}
	}
}

// lastTag returns the tag of the last live element of a list (zero for an
// empty list).
func lastTag(lst *object) wire.ElemTag {
	vis := lst.visibleElems(lst.latestVT(), false)
	if len(vis) == 0 {
		return wire.ElemTag{}
	}
	return lst.elems[vis[len(vis)-1]].tag
}

// abortJoin aborts an in-flight join transaction (no retry: joins surface
// their failure to the caller).
func (s *Site) abortJoin(st *txnState, reason string) {
	st.txn = nil // suppress automatic retry
	st.retryFn = nil
	s.abortTxn(st, reason)
	if st.handle != nil {
		st.handle.finish(Result{Err: fmt.Errorf("%w: %s", ErrAborted, reason), VT: st.vt})
	}
}

// LeaveRelationship removes obj from its replica relationship: the
// remaining members receive the relationship graph with obj disconnected
// (each replica keeps its own component, so obj reverts to a single-node
// graph), and the association drops the membership entry. It runs as an
// ordinary transaction, confirmed by the old graph's primary, and retries
// automatically on conflicts.
func (s *Site) LeaveRelationship(assoc ObjRef, relName string, obj ObjRef) *Handle {
	return s.Submit(&Txn{
		Name: "leave-relationship",
		Execute: func(tx *Tx) error {
			if obj.o == nil {
				return ErrInvalidRef
			}
			local := obj.o
			if local.graph == nil || local.graph.NumNodes() <= 1 {
				return fmt.Errorf("%w: object not collaborating", ErrWrongKind)
			}
			// Update the association membership if provided.
			if assoc.o != nil && assoc.o.kind == KindAssociation {
				cur, _ := tx.Read(assoc)
				rels, _ := cur.([]wire.Relationship)
				rels = cloneRels(rels)
				for i := range rels {
					if rels[i].Name != relName {
						continue
					}
					kept := rels[i].Members[:0]
					for _, mb := range rels[i].Members {
						if mb.Obj != local.id {
							kept = append(kept, mb)
						}
					}
					rels[i].Members = kept
				}
				tx.WriteScalar(assoc.o, rels)
			}
			// Ship the relationship graph with this object disconnected:
			// every replica (including this one) keeps the component
			// containing itself.
			disconnected := local.graph.Clone()
			disconnected.RemoveNodeContract(local.id)
			site := local.site.id
			disconnected.AddNode(local.id, site)
			tx.writeGraphUpdate(local, disconnected)
			return nil
		},
	})
}
