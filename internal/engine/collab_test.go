package engine

import (
	"testing"
	"time"

	"decaf/internal/transport"
)

// TestFullCollaborationEstablishment walks the complete §2.6 flow:
// application A creates a relationship and an association, publicizes an
// invitation; application B imports the invitation, instantiates its own
// association object, reads the relationships, and joins.
func TestFullCollaborationEstablishment(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	sA, sB := h.site(1), h.site(2)

	// A's shared object and association.
	aObj, _ := sA.CreateObject(KindString, "doc", "draft-1")
	assocA, err := sA.CreateAssociation("project-docs")
	if err != nil {
		t.Fatal(err)
	}
	if res := sA.DefineRelationship(assocA, "doc", aObj, "the shared doc").Wait(); !res.Committed {
		t.Fatalf("define: %+v", res)
	}
	inv, err := sA.Invite(assocA, "join my docs")
	if err != nil {
		t.Fatal(err)
	}

	// B imports the invitation: its own association object replicates A's.
	assocB, hImport, err := sB.ImportAssociation(inv, "imported docs")
	if err != nil {
		t.Fatal(err)
	}
	if res := hImport.Wait(); !res.Committed {
		t.Fatalf("import: %+v", res)
	}
	h.eventually(2*time.Second, "relationships visible at B", func() bool {
		rels, err := sB.Relationships(assocB)
		return err == nil && len(rels) == 1 && rels[0].Name == "doc" && len(rels[0].Members) == 1
	})

	// B discovers the relationship and joins its own object.
	bObj, _ := sB.CreateObject(KindString, "doc", "")
	if res := sB.JoinRelationship(assocB, "doc", bObj).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}
	h.eventually(2*time.Second, "value mirrored at B", func() bool {
		v, _ := sB.ReadCommitted(bObj)
		return v == "draft-1"
	})

	// The association value now lists B as a member — at BOTH replicas
	// (associations are model objects; membership changes are updates).
	h.eventually(2*time.Second, "membership visible at both sites", func() bool {
		relsA, _ := sA.Relationships(assocA)
		relsB, _ := sB.Relationships(assocB)
		return len(relsA) == 1 && len(relsA[0].Members) == 2 &&
			len(relsB) == 1 && len(relsB[0].Members) == 2
	})

	// Writes now propagate both ways.
	if res := sB.Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(bObj, "draft-2")
	}}).Wait(); !res.Committed {
		t.Fatal("write after join failed")
	}
	h.eventually(2*time.Second, "write propagates to A", func() bool {
		v, _ := sA.ReadCommitted(aObj)
		return v == "draft-2"
	})
}

func TestAssociationViewsSignalMembershipChanges(t *testing.T) {
	// "changes in membership in associations are signaled as update
	// notifications in exactly the same way as changes in values" (§2.6).
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	sA, sB := h.site(1), h.site(2)

	aObj, _ := sA.CreateObject(KindInt, "x", int64(0))
	assocA, _ := sA.CreateAssociation("assoc")
	if res := sA.DefineRelationship(assocA, "xs", aObj, "x").Wait(); !res.Committed {
		t.Fatal("define failed")
	}

	rec := &recorder{}
	if _, err := sA.AttachView([]ObjRef{assocA}, Optimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}
	h.eventually(time.Second, "initial", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) >= 1
	})
	before, _ := rec.snapshot()

	inv, _ := sA.Invite(assocA, "")
	assocB, hImp, _ := sB.ImportAssociation(inv, "")
	if res := hImp.Wait(); !res.Committed {
		t.Fatal("import failed")
	}
	bObj, _ := sB.CreateObject(KindInt, "x", int64(0))
	if res := sB.JoinRelationship(assocB, "xs", bObj).Wait(); !res.Committed {
		t.Fatal("join failed")
	}

	h.eventually(2*time.Second, "membership update notification", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) > len(before)
	})
}

func TestLeaveRelationship(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	// Site 2 leaves; sites 1 and 3 keep collaborating.
	if res := h.site(2).LeaveRelationship(ObjRef{}, "", refs[2]).Wait(); !res.Committed {
		t.Fatalf("leave: %+v", res)
	}
	h.eventually(2*time.Second, "graphs shrunk", func() bool {
		for _, i := range []int{1, 3} {
			sites, _ := h.site(i).ReplicaSites(refs[i])
			if len(sites) != 2 {
				return false
			}
			for _, s := range sites {
				if s == 2 {
					return false
				}
			}
		}
		s2, _ := h.site(2).ReplicaSites(refs[2])
		return len(s2) == 1
	})

	// Updates no longer reach site 2, but still flow 1 <-> 3.
	if res := h.setInt(1, refs[1], 42); !res.Committed {
		t.Fatalf("write after leave: %+v", res)
	}
	h.eventually(2*time.Second, "1<->3 propagation", func() bool {
		v3, _ := h.site(3).ReadCommitted(refs[3])
		return v3 == int64(42)
	})
	v2, _ := h.site(2).ReadCommitted(refs[2])
	if v2 != int64(0) {
		t.Fatalf("left site received update: %v", v2)
	}
}

func TestJoinUnknownObjectFails(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	ref, _ := h.site(2).CreateObject(KindInt, "x", int64(0))
	bogus := ref.ID()
	bogus.Seq += 999
	res := h.site(2).JoinObject(ref, 1, bogus).Wait()
	if res.Committed || res.Err == nil {
		t.Fatalf("join to unknown object: %+v", res)
	}
}

func TestJoinRelationshipWithoutMembersFails(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	assoc, _ := h.site(1).CreateAssociation("empty")
	obj, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	res := h.site(1).JoinRelationship(assoc, "nope", obj).Wait()
	if res.Committed || res.Err == nil {
		t.Fatalf("join empty relationship: %+v", res)
	}
}

func TestChainedJoinsAreTransitive(t *testing.T) {
	// 2 joins 1; 3 joins 2: all three become mutual replicas
	// (relationships are transitive, §2.2).
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	r1, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	r2, _ := h.site(2).CreateObject(KindInt, "x", int64(0))
	r3, _ := h.site(3).CreateObject(KindInt, "x", int64(0))

	if res := h.site(2).JoinObject(r2, 1, r1.ID()).Wait(); !res.Committed {
		t.Fatalf("join 2->1: %+v", res)
	}
	// 3 joins via 2 (not via 1): transitivity must pull in site 1 too.
	if res := h.site(3).JoinObject(r3, 2, r2.ID()).Wait(); !res.Committed {
		t.Fatalf("join 3->2: %+v", res)
	}
	h.eventually(2*time.Second, "all graphs have 3 sites", func() bool {
		for i, r := range map[int]ObjRef{1: r1, 2: r2, 3: r3} {
			sites, _ := h.site(i).ReplicaSites(r)
			if len(sites) != 3 {
				return false
			}
		}
		return true
	})

	if res := h.setInt(3, r3, 5); !res.Committed {
		t.Fatalf("write: %+v", res)
	}
	h.eventually(2*time.Second, "full propagation", func() bool {
		v1, _ := h.site(1).ReadCommitted(r1)
		v2, _ := h.site(2).ReadCommitted(r2)
		return v1 == int64(5) && v2 == int64(5)
	})
}

func TestMultipleRelationshipsInOneAssociation(t *testing.T) {
	// One association can bundle several replica relationships
	// (paper §2.1: "The value of an association object is a set of
	// replica relationships"), joinable independently.
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	sA, sB := h.site(1), h.site(2)

	doc, _ := sA.CreateObject(KindString, "doc", "d0")
	notes, _ := sA.CreateObject(KindString, "notes", "n0")
	assoc, _ := sA.CreateAssociation("workspace")
	if res := sA.DefineRelationship(assoc, "doc", doc, "the doc").Wait(); !res.Committed {
		t.Fatal("define doc")
	}
	if res := sA.DefineRelationship(assoc, "notes", notes, "the notes").Wait(); !res.Committed {
		t.Fatal("define notes")
	}
	inv, _ := sA.Invite(assoc, "")

	assocB, imp, err := sB.ImportAssociation(inv, "imported")
	if err != nil {
		t.Fatal(err)
	}
	if res := imp.Wait(); !res.Committed {
		t.Fatalf("import: %+v", res)
	}
	h.eventually(2*time.Second, "two relationships visible", func() bool {
		rels, _ := sB.Relationships(assocB)
		return len(rels) == 2
	})

	// Join only the "doc" relationship; "notes" stays private to A —
	// the paper's partial-state-sharing requirement (§1: "the shared
	// state may not be the entire application state").
	docB, _ := sB.CreateObject(KindString, "doc", "")
	if res := sB.JoinRelationship(assocB, "doc", docB).Wait(); !res.Committed {
		t.Fatal("join doc")
	}
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		if err := tx.Write(doc, "d1"); err != nil {
			return err
		}
		return tx.Write(notes, "n1")
	}}).Wait(); !res.Committed {
		t.Fatal("write")
	}
	h.eventually(2*time.Second, "doc replicated", func() bool {
		v, _ := sB.ReadCommitted(docB)
		return v == "d1"
	})
	// B never receives the notes object's state.
	notesSites, _ := sA.ReplicaSites(notes)
	if len(notesSites) != 1 {
		t.Fatalf("notes leaked to %v", notesSites)
	}
}
