package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/wire"
)

// Convergence properties: under arbitrary interleavings of conflicting
// transactions, message jitter, and mixed workloads, all replicas of every
// object must quiesce to identical committed values (the atomicity +
// total-order guarantee of paper §2.4), and pessimistic views must observe
// exactly the committed sequence in monotonic order (§4.2).

// convergenceScenario runs a randomized multi-site workload and checks
// quiescent equality of all replicas.
func convergenceScenario(t *testing.T, seed int64, nSites, nObjects, txnsPerSite int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// A small retry delay damps retry livelock between mutually
	// conflicting sites under heavy scheduler load (the paper's immediate
	// re-execution assumes idle multi-core clients); a bigger budget
	// absorbs contention spikes on loaded CI machines.
	h := newHarnessOpts(t, nSites, transport.Config{
		Latency: time.Millisecond,
		Jitter:  2 * time.Millisecond,
		Seed:    seed,
	}, Options{RetryDelay: 500 * time.Microsecond, MaxRetries: 500})

	siteIdx := make([]int, nSites)
	for i := range siteIdx {
		siteIdx[i] = i + 1
	}
	objs := make([]map[int]ObjRef, nObjects)
	for k := range objs {
		// Randomize the anchor so primaries spread across sites.
		order := append([]int(nil), siteIdx...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		objs[k] = h.joined(KindInt, fmt.Sprintf("o%d", k), int64(0), order...)
	}

	var wg sync.WaitGroup
	for i := 1; i <= nSites; i++ {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < txnsPerSite; k++ {
				a := r.Intn(nObjects)
				b := r.Intn(nObjects)
				blind := r.Intn(2) == 0
				val := int64(r.Intn(1000))
				res := h.site(i).Submit(&Txn{Execute: func(tx *Tx) error {
					if blind {
						return tx.Write(objs[a][i], val)
					}
					// Read-modify-write across two objects.
					va, err := tx.Read(objs[a][i])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[a][i], va.(int64)+1); err != nil {
						return err
					}
					return tx.Write(objs[b][i], va.(int64))
				}}).Wait()
				if !res.Committed && res.Err != nil {
					// Retry exhaustion is the only acceptable failure,
					// and only under extreme contention.
					t.Errorf("site %d txn failed: %+v", i, res)
					return
				}
			}
		}(i, seed+int64(i)*101)
	}
	wg.Wait()

	// Quiesce: all replicas of every object equal.
	h.eventually(10*time.Second, "replica convergence", func() bool {
		for k := range objs {
			var want any
			for _, i := range siteIdx {
				v, err := h.site(i).ReadCommitted(objs[k][i])
				if err != nil {
					return false
				}
				if want == nil {
					want = v
				} else if v != want {
					return false
				}
			}
		}
		return true
	})
}

func TestConvergenceTwoSites(t *testing.T) {
	convergenceScenario(t, 1, 2, 3, 15)
}

func TestConvergenceFourSites(t *testing.T) {
	convergenceScenario(t, 2, 4, 4, 10)
}

func TestConvergenceManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	for seed := int64(10); seed < 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			convergenceScenario(t, seed, 3, 2, 8)
		})
	}
}

// TestPessimisticViewExactCommittedSequence verifies losslessness: a
// pessimistic view at a third site receives one notification per
// committed update, in VT order, with no uncommitted values, under a
// concurrent two-writer workload.
func TestPessimisticViewExactCommittedSequence(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 5})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	rec := &recorder{}
	if _, err := h.site(3).AttachView([]ObjRef{refs[3]}, Pessimistic, rec.fns()); err != nil {
		t.Fatal(err)
	}

	const perWriter = 10
	var wg sync.WaitGroup
	commitCount := make([]int, 3)
	for w := 1; w <= 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				val := int64(w*1000 + k)
				res := h.site(w).Submit(&Txn{Execute: func(tx *Tx) error {
					return tx.Write(refs[w], val)
				}}).Wait()
				if res.Committed {
					commitCount[w-1]++
				}
			}
		}(w)
	}
	wg.Wait()

	total := commitCount[0] + commitCount[1]
	h.eventually(10*time.Second, "all committed updates notified", func() bool {
		ups, _ := rec.snapshot()
		return len(ups) >= total // initial snapshot may add one
	})
	ups, _ := rec.snapshot()
	for i := 1; i < len(ups); i++ {
		if !ups[i-1].TS.Less(ups[i].TS) {
			t.Fatalf("notification %d out of order: %v then %v", i, ups[i-1].TS, ups[i].TS)
		}
		if !ups[i].Committed {
			t.Fatalf("notification %d not committed", i)
		}
	}
}

// TestCompositeConvergenceUnderConcurrentStructure mixes inserts, removes
// and child writes from all sites and checks structural convergence.
func TestCompositeConvergenceUnderConcurrentStructure(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 9})
	lists := h.joined(KindList, "L", nil, 1, 2, 3)

	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(i)))
			for k := 0; k < 10; k++ {
				op := r.Intn(3)
				res := h.site(i).Submit(&Txn{Execute: func(tx *Tx) error {
					n, err := tx.ListLen(lists[i])
					if err != nil {
						return err
					}
					switch {
					case op == 0 || n == 0:
						_, err := tx.ListAppend(lists[i], wire.ChildDecl{Kind: KindString, Value: fmt.Sprintf("s%d-%d", i, k)})
						return err
					case op == 1:
						return tx.ListRemove(lists[i], r.Intn(n))
					default:
						c, err := tx.ListGet(lists[i], r.Intn(n))
						if err != nil {
							return err
						}
						return tx.Write(c, fmt.Sprintf("edit%d-%d", i, k))
					}
				}}).Wait()
				if !res.Committed && res.Err != nil {
					t.Errorf("site %d structural txn failed: %+v", i, res)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	h.eventually(10*time.Second, "structural convergence", func() bool {
		v1, e1 := h.site(1).ReadCommitted(lists[1])
		v2, e2 := h.site(2).ReadCommitted(lists[2])
		v3, e3 := h.site(3).ReadCommitted(lists[3])
		return e1 == nil && e2 == nil && e3 == nil &&
			reflect.DeepEqual(v1, v2) && reflect.DeepEqual(v2, v3)
	})
}

// TestConvergenceWithMidRunFailure kills a site mid-workload; survivors
// must still converge.
func TestConvergenceWithMidRunFailure(t *testing.T) {
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)

	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				val := int64(i*100 + k)
				h.site(i).Submit(&Txn{Execute: func(tx *Tx) error {
					return tx.Write(refs[i], val)
				}}).Wait()
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	h.net.Kill(3)
	wg.Wait()

	h.eventually(10*time.Second, "survivor convergence after failure", func() bool {
		v1, _ := h.site(1).ReadCommitted(refs[1])
		v2, _ := h.site(2).ReadCommitted(refs[2])
		sites1, _ := h.site(1).ReplicaSites(refs[1])
		return v1 == v2 && len(sites1) == 2
	})
}
