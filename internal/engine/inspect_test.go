package engine

import (
	"bytes"
	"strings"
	"testing"

	"decaf/internal/transport"
	"decaf/internal/wire"
)

func TestDescribeCheckpoint(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "balance", int64(0), 1, 2)
	if res := h.setInt(1, refs[1], 42); !res.Committed {
		t.Fatal("write failed")
	}
	lst, _ := h.site(1).CreateObject(KindList, "log", nil)
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		_, err := tx.ListAppend(lst, wire.ChildDecl{Kind: KindString, Value: "entry"})
		return err
	}}).Wait(); !res.Committed {
		t.Fatal("append failed")
	}

	var buf bytes.Buffer
	if err := h.site(1).Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := DescribeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"checkpoint of site s1", "balance", "42", "replicas [s1 s2]", "log", "entry"} {
		if !strings.Contains(out, want) {
			t.Errorf("description missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeCheckpointRejectsGarbage(t *testing.T) {
	if _, err := DescribeCheckpoint(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
