package engine

import (
	"strconv"
	"sync"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/obs"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// The sharded commit pipeline parallelizes the per-site hot path:
// applying and validating remote Writes whose targets are disjoint
// top-level objects. Under the paper's primary-copy checks (§3.1) such
// transactions are independent — RL scans the target's history, NC its
// reservation table, and the append lands in the same history — so the
// work partitions cleanly by object.
//
// Object IDs are striped into numStripes shards. During a loop batch,
// eligible Writes are STAGED in arrival order; at a flush point the
// loop forks them to the worker pool (one goroutine per occupied
// stripe, the loop itself serving one stripe), PARKS at the join
// barrier, and then FINISHES each task back on the loop in the original
// arrival order. The event loop therefore remains the single
// linearization point: workers run only while the loop is parked, they
// write only state owned by their stripe (the target objects' histories
// and reservations, plus the task's own txnState), and everything
// cross-object — view scheduling, delegation decisions, outcome
// bookkeeping, the VT clock — happens on the loop, in order.
const numStripes = 16

// stripeOf maps an object ID to its shard (fibonacci-style hash so
// sequential per-site Seq values spread across stripes).
func stripeOf(id ids.ObjectID) int {
	h := uint64(id.Site)*0x9e3779b97f4a7c15 + id.Seq*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return int(h % numStripes)
}

// writeTask is one staged remote Write: applied and validated on a
// shard worker, finished (views, delegation, confirms) on the loop.
type writeTask struct {
	from             vtime.SiteID
	m                wire.Write
	st               *txnState
	status           history.Status
	committedAlready bool
	// fast marks a staged FastWrite (m is its Write-shaped equivalent):
	// committed on arrival, with the demotion sweep run at finish time.
	fast   bool
	stripe int

	// Results written by the worker, read by the loop after the join
	// barrier.
	verdict bool
	reason  string
}

// shardJob hands one stripe's ordered task run to a worker.
type shardJob struct {
	tasks []*writeTask
	wg    *sync.WaitGroup
}

// startWorkers launches the pool. With workers <= 1 the pipeline is
// serial and no goroutines exist.
func (s *Site) startWorkers() {
	if s.workers <= 1 {
		return
	}
	// Buffered to numStripes so the forking loop never blocks handing
	// out jobs while it runs its own stripe.
	s.shardJobs = make(chan shardJob, numStripes)
	for i := 1; i < s.workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for job := range s.shardJobs {
				for _, t := range job.tasks {
					s.runWriteTask(t)
				}
				job.wg.Done()
			}
		}()
	}
}

// stopWorkers shuts the pool down; called by the exiting event loop, so
// no further jobs can be in flight.
func (s *Site) stopWorkers() {
	if s.shardJobs != nil {
		close(s.shardJobs)
		s.workerWG.Wait()
	}
}

// stageWrite queues an eligible Write for the batch's fork-join run,
// performing the loop-owned prologue (outcome lookup, txnState
// creation, apply trace) so the worker touches only stripe-owned state.
// It returns false when the message must take the serial path.
func (s *Site) stageWrite(from vtime.SiteID, m wire.Write) bool {
	if s.workers <= 1 || s.inFlush || s.authorizer != nil {
		return false
	}
	stripe, ok := s.writeStripe(m)
	if !ok {
		return false
	}
	if s.stagedVTs[m.TxnVT] {
		// A second message of the same transaction would share its
		// txnState across workers; land the first run before staging.
		s.flushWrites()
	}
	if known, ok := s.outcomes[m.TxnVT]; ok && !known {
		return true // already aborted: ignore late updates (paper §3.1)
	}
	committedAlready := false
	if known, ok := s.outcomes[m.TxnVT]; ok && known {
		committedAlready = true
	}
	st := s.ensureTxn(m.TxnVT, m.Origin)
	if st.appliedWall == 0 {
		st.appliedWall = s.obs.NowNanos()
	}
	s.trace(obs.EvApply, m.TxnVT, m.Origin, "")
	status := history.Pending
	if committedAlready {
		status = history.Committed
	}
	s.staged = append(s.staged, &writeTask{
		from:             from,
		m:                m,
		st:               st,
		status:           status,
		committedAlready: committedAlready,
		stripe:           stripe,
	})
	s.stagedVTs[m.TxnVT] = true
	return true
}

// stageFastWrite queues an eligible FastWrite for the batch's fork-join
// run. Fast-path transactions are committed on arrival, so the task
// carries no confirm work; the loop-owned prologue records the outcome
// before workers touch histories, letting blocked-update bookkeeping (not
// possible for eligible shapes anyway) and drainPending see it committed.
func (s *Site) stageFastWrite(from vtime.SiteID, m wire.FastWrite) bool {
	if s.workers <= 1 || s.inFlush || s.authorizer != nil {
		return false
	}
	w := wire.Write{TxnVT: m.TxnVT, Origin: m.Origin, Updates: m.Updates}
	stripe, ok := s.writeStripe(w)
	if !ok {
		return false
	}
	if s.stagedVTs[m.TxnVT] {
		s.flushWrites()
	}
	s.outcomes[m.TxnVT] = true
	st := s.ensureTxn(m.TxnVT, m.Origin)
	if st.appliedWall == 0 {
		st.appliedWall = s.obs.NowNanos()
	}
	s.trace(obs.EvApply, m.TxnVT, m.Origin, "fastpath")
	s.staged = append(s.staged, &writeTask{
		from:             from,
		m:                w,
		st:               st,
		status:           history.Committed,
		committedAlready: true,
		fast:             true,
		stripe:           stripe,
	})
	s.stagedVTs[m.TxnVT] = true
	return true
}

// writeStripe decides parallel eligibility and the stripe. Eligible
// writes keep everything the worker touches inside one stripe:
// top-level scalar/association updates (OpSet/OpAssoc with an empty
// path) on known replication roots with no pending indirect updates,
// read checks of the same shape, and all targets on a single stripe.
// Everything else — structural ops, pathed updates, composites, unknown
// objects — takes the serial path, where blocking and drainPending
// semantics apply unchanged.
func (s *Site) writeStripe(m wire.Write) (int, bool) {
	if len(m.Updates) == 0 {
		return 0, false
	}
	stripe := -1
	for _, upd := range m.Updates {
		switch upd.Op.(type) {
		case wire.OpSet, wire.OpAssoc, wire.OpAdd, wire.OpAssocInsert:
		default:
			return 0, false
		}
		if len(upd.Path) != 0 {
			return 0, false
		}
		root, ok := s.objects[upd.Target]
		if !ok || root.parent != nil || root.graph == nil || len(root.pending) > 0 {
			return 0, false
		}
		if root.kind == KindList || root.kind == KindTuple {
			return 0, false
		}
		sp := stripeOf(upd.Target)
		if stripe >= 0 && sp != stripe {
			return 0, false
		}
		stripe = sp
	}
	for _, c := range m.Checks {
		if len(c.Path) != 0 {
			return 0, false
		}
		root, ok := s.objects[c.Target]
		if !ok || root.parent != nil || root.graph == nil {
			return 0, false
		}
		if stripeOf(c.Target) != stripe {
			return 0, false
		}
	}
	return stripe, true
}

// runWriteTask applies and validates one staged Write. It runs on a
// shard worker (or inline on the loop) while the event loop is parked
// at the join barrier: loop-owned maps are read-only here, and all
// mutations land in the task's stripe (object histories/reservations)
// or the task's own txnState.
func (s *Site) runWriteTask(t *writeTask) {
	for _, upd := range t.m.Updates {
		// Eligible updates never block (empty path, no structure), so
		// the pending bookkeeping of the serial path cannot trigger.
		if s.applyUpdate(t.st, upd, t.status) {
			s.stats.UpdatesApplied.Add(1)
		}
	}
	if t.m.NeedsConfirm {
		t.verdict, _, t.reason = s.validateAsPrimary(t.st, t.m.TxnVT, t.m.Updates, t.m.Checks)
	}
}

// flushWrites is the pipeline's flush point: fork staged tasks across
// the occupied stripes, park at the join barrier, then finish each task
// on the loop in arrival order. Serial-path handlers call it before
// touching any state a staged write could own.
func (s *Site) flushWrites() {
	if len(s.staged) == 0 {
		return
	}
	tasks := s.staged
	s.staged = nil
	clear(s.stagedVTs)
	s.inFlush = true
	defer func() { s.inFlush = false }()

	byStripe := map[int][]*writeTask{}
	var stripes []int
	for _, t := range tasks {
		if _, ok := byStripe[t.stripe]; !ok {
			stripes = append(stripes, t.stripe)
		}
		byStripe[t.stripe] = append(byStripe[t.stripe], t)
	}
	if s.shardJobs == nil || len(stripes) == 1 {
		for _, t := range tasks {
			s.runWriteTask(t)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(stripes) - 1)
		for _, sp := range stripes[1:] {
			s.shardJobs <- shardJob{tasks: byStripe[sp], wg: &wg}
		}
		for _, t := range byStripe[stripes[0]] {
			s.runWriteTask(t) // the loop doubles as the first stripe's worker
		}
		wg.Wait()
	}
	s.stats.ShardedWrites.Add(uint64(len(tasks)))

	for _, t := range tasks {
		s.finishWrite(t)
	}
}

// finishWrite completes a staged Write on the loop: optimistic view
// scheduling, commit bookkeeping for already-decided transactions, and
// the primary verdict (delegated decision or Confirm back to the
// origin). This mirrors the serial handleWrite epilogue with blocked
// always zero.
func (s *Site) finishWrite(t *writeTask) {
	st, m := t.st, t.m
	s.scheduleOptimistic(st.appliedObjects())
	if t.committedAlready {
		s.onLocalCommit(st.appliedObjects(), m.TxnVT)
		st.status = txnCommitted
	}
	if t.fast {
		s.resolveRC(m.TxnVT, true)
		s.demoteGuessesFor(st.appliedObjects(), m.TxnVT)
		s.trace(obs.EvCommit, m.TxnVT, m.Origin, "fastpath")
		s.gcTxnObjects(st)
		return
	}
	if !m.NeedsConfirm {
		return
	}
	if !t.verdict {
		s.log.Debug("primary denial", "txn", m.TxnVT.String(), "reason", t.reason)
	}
	if s.obs.TraceEnabled() {
		verdict := "ok"
		if !t.verdict {
			verdict = t.reason
		}
		s.trace(obs.EvPrimaryCheck, m.TxnVT, m.Origin, verdict)
		if t.verdict && len(st.reservedObjs) > 0 {
			s.trace(obs.EvReserve, m.TxnVT, 0, strconv.Itoa(len(st.reservedObjs))+" objects")
		}
	}
	if m.Delegate != nil {
		s.decideAsDelegate(st, m, t.verdict)
		return
	}
	s.send(m.Origin, wire.Confirm{TxnVT: m.TxnVT, From: s.id, OK: t.verdict, Reason: t.reason})
}
