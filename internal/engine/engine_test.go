package engine

import (
	"fmt"
	"log/slog"
	"os"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// harness builds a set of sites on one in-memory network.
type harness struct {
	t     *testing.T
	net   *transport.Network
	sites map[vtime.SiteID]*Site
}

func newHarness(t *testing.T, n int, cfg transport.Config) *harness {
	t.Helper()
	return newHarnessOpts(t, n, cfg, Options{})
}

// newHarnessOpts builds a harness with explicit site options.
func newHarnessOpts(t *testing.T, n int, cfg transport.Config, opts Options) *harness {
	t.Helper()
	h := &harness{t: t, net: transport.NewNetwork(cfg), sites: map[vtime.SiteID]*Site{}}
	var logger *slog.Logger
	if os.Getenv("DECAF_DEBUG") != "" {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	for i := 1; i <= n; i++ {
		id := vtime.SiteID(i)
		ep, err := h.net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		opts.Logger = logger
		s := NewSite(ep, opts)
		s.Start()
		h.sites[id] = s
	}
	t.Cleanup(func() {
		for _, s := range h.sites {
			s.Stop()
		}
		h.net.Close()
	})
	return h
}

func (h *harness) site(i int) *Site { return h.sites[vtime.SiteID(i)] }

// joined creates one object per site, all joined into a single replica
// relationship, returning refs per site index (1-based).
func (h *harness) joined(kind Kind, desc string, initial any, sites ...int) map[int]ObjRef {
	h.t.Helper()
	refs := map[int]ObjRef{}
	first := sites[0]
	ref, err := h.site(first).CreateObject(kind, desc, initial)
	if err != nil {
		h.t.Fatal(err)
	}
	refs[first] = ref
	for _, i := range sites[1:] {
		r, err := h.site(i).CreateObject(kind, desc, initial)
		if err != nil {
			h.t.Fatal(err)
		}
		res := h.site(i).JoinObject(r, vtime.SiteID(first), ref.ID()).Wait()
		if res.Err != nil || !res.Committed {
			h.t.Fatalf("join from site %d: %+v", i, res)
		}
		refs[i] = r
	}
	// Joins commit at their origin before every member has applied the
	// final merged graph; wait until all members agree so tests start
	// from a settled topology.
	h.eventually(3*time.Second, "replica graphs converged", func() bool {
		for _, i := range sites {
			got, err := h.site(i).ReplicaSites(refs[i])
			if err != nil || len(got) != len(sites) {
				return false
			}
		}
		return true
	})
	return refs
}

// eventually polls until cond is true or the deadline passes.
func (h *harness) eventually(timeout time.Duration, what string, cond func() bool) {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("timed out waiting for %s", what)
}

// committedInt reads the committed int64 value of ref at site i.
func (h *harness) committedInt(i int, ref ObjRef) int64 {
	h.t.Helper()
	v, err := h.site(i).ReadCommitted(ref)
	if err != nil {
		h.t.Fatal(err)
	}
	n, _ := v.(int64)
	return n
}

// setInt runs a blind-write transaction setting ref to v at site i.
func (h *harness) setInt(i int, ref ObjRef, v int64) Result {
	h.t.Helper()
	return h.site(i).Submit(&Txn{
		Name:    "set",
		Execute: func(tx *Tx) error { return tx.Write(ref, v) },
	}).Wait()
}

func TestLocalOnlyTransaction(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	ref, err := h.site(1).CreateObject(KindInt, "x", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	res := h.setInt(1, ref, 42)
	if !res.Committed || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if got := h.committedInt(1, ref); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
}

func TestReadYourWrites(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	ref, _ := h.site(1).CreateObject(KindInt, "x", int64(5))
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		v, err := tx.Read(ref)
		if err != nil {
			return err
		}
		if v.(int64) != 5 {
			return fmt.Errorf("first read = %v", v)
		}
		if err := tx.Write(ref, int64(6)); err != nil {
			return err
		}
		v, _ = tx.Read(ref)
		if v.(int64) != 6 {
			return fmt.Errorf("read-your-write = %v", v)
		}
		if err := tx.Write(ref, v.(int64)+1); err != nil {
			return err
		}
		return nil
	}}).Wait()
	if !res.Committed {
		t.Fatalf("result = %+v", res)
	}
	if got := h.committedInt(1, ref); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestProgrammedAbort(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	ref, _ := h.site(1).CreateObject(KindInt, "x", int64(1))
	abortCalled := make(chan error, 1)
	res := h.site(1).Submit(&Txn{
		Execute: func(tx *Tx) error {
			if err := tx.Write(ref, int64(99)); err != nil {
				return err
			}
			return fmt.Errorf("can't transfer more than balance")
		},
		OnAbort: func(err error) { abortCalled <- err },
	}).Wait()
	if res.Committed || res.Err == nil {
		t.Fatalf("result = %+v, want programmed abort", res)
	}
	select {
	case err := <-abortCalled:
		if err == nil {
			t.Fatal("OnAbort got nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("OnAbort not called")
	}
	// The optimistic write must be rolled back.
	if got := h.committedInt(1, ref); got != 1 {
		t.Fatalf("value = %d, want 1 (rolled back)", got)
	}
	if v, _ := h.site(1).ReadCurrent(ref); v.(int64) != 1 {
		t.Fatalf("current = %v, want 1", v)
	}
}

func TestPanicBecomesAbort(t *testing.T) {
	h := newHarness(t, 1, transport.Config{})
	ref, _ := h.site(1).CreateObject(KindInt, "x", int64(1))
	res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		_ = tx.Write(ref, int64(1000))
		panic("boom")
	}}).Wait()
	if res.Committed || res.Err == nil {
		t.Fatalf("result = %+v, want abort", res)
	}
	if got := h.committedInt(1, ref); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}

func TestJoinAndReplicatedWrite(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "counter", int64(0), 1, 2)

	// Both replicas report the same replica sites and primary.
	sites1, _ := h.site(1).ReplicaSites(refs[1])
	sites2, _ := h.site(2).ReplicaSites(refs[2])
	if len(sites1) != 2 || len(sites2) != 2 {
		t.Fatalf("replica sites: %v / %v", sites1, sites2)
	}
	p1, _ := h.site(1).PrimarySite(refs[1])
	p2, _ := h.site(2).PrimarySite(refs[2])
	if p1 != p2 {
		t.Fatalf("primary disagreement: %v vs %v", p1, p2)
	}

	res := h.setInt(2, refs[2], 7)
	if !res.Committed {
		t.Fatalf("write: %+v", res)
	}
	h.eventually(2*time.Second, "replica convergence", func() bool {
		return h.committedInt(1, refs[1]) == 7 && h.committedInt(2, refs[2]) == 7
	})
}

func TestJoinCopiesValue(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	ref1, _ := h.site(1).CreateObject(KindString, "s", "hello")
	ref2, _ := h.site(2).CreateObject(KindString, "s", "")
	res := h.site(2).JoinObject(ref2, 1, ref1.ID()).Wait()
	if !res.Committed {
		t.Fatalf("join: %+v", res)
	}
	h.eventually(time.Second, "value copy", func() bool {
		v, _ := h.site(2).ReadCommitted(ref2)
		return v == "hello"
	})
}

func TestThreePartyConvergence(t *testing.T) {
	h := newHarness(t, 3, transport.Config{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2, 3)
	res := h.setInt(3, refs[3], 11)
	if !res.Committed {
		t.Fatalf("write: %+v", res)
	}
	h.eventually(2*time.Second, "three-site convergence", func() bool {
		return h.committedInt(1, refs[1]) == 11 &&
			h.committedInt(2, refs[2]) == 11 &&
			h.committedInt(3, refs[3]) == 11
	})
}

func TestConflictAbortAndRetry(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: 2 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	// Two read-modify-write increments race from both sites; optimistic
	// concurrency control must serialize them via abort+retry so no
	// increment is lost.
	inc := func(i int) *Handle {
		return h.site(i).Submit(&Txn{Execute: func(tx *Tx) error {
			v, err := tx.Read(refs[i])
			if err != nil {
				return err
			}
			return tx.Write(refs[i], v.(int64)+1)
		}})
	}
	h1, h2 := inc(1), inc(2)
	r1, r2 := h1.Wait(), h2.Wait()
	if !r1.Committed || !r2.Committed {
		t.Fatalf("results: %+v / %+v", r1, r2)
	}
	h.eventually(2*time.Second, "both increments applied", func() bool {
		return h.committedInt(1, refs[1]) == 2 && h.committedInt(2, refs[2]) == 2
	})
}

func TestAtomicMultiObjectTransfer(t *testing.T) {
	// The paper's XferTrans example (Fig. 2): move balance between two
	// replicated accounts atomically.
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	acctA := h.joined(KindFloat, "A", 100.0, 1, 2)
	acctB := h.joined(KindFloat, "B", 0.0, 1, 2)

	res := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		av, _ := tx.Read(acctA[2])
		bv, _ := tx.Read(acctB[2])
		amt := 30.0
		if av.(float64) < amt {
			return fmt.Errorf("can't transfer more than balance")
		}
		_ = tx.Write(acctA[2], av.(float64)-amt)
		_ = tx.Write(acctB[2], bv.(float64)+amt)
		return nil
	}}).Wait()
	if !res.Committed {
		t.Fatalf("transfer: %+v", res)
	}
	h.eventually(2*time.Second, "transfer visible at both sites", func() bool {
		a1, _ := h.site(1).ReadCommitted(acctA[1])
		b1, _ := h.site(1).ReadCommitted(acctB[1])
		return a1 == 70.0 && b1 == 30.0
	})
}

func TestOverdraftAborts(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	acct := h.joined(KindFloat, "A", 10.0, 1, 2)
	res := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		av, _ := tx.Read(acct[2])
		if av.(float64) < 50 {
			return fmt.Errorf("can't transfer more than balance")
		}
		return tx.Write(acct[2], av.(float64)-50)
	}}).Wait()
	if res.Committed || res.Err == nil {
		t.Fatalf("result = %+v, want programmed abort", res)
	}
	if v, _ := h.site(1).ReadCommitted(acct[1]); v != 10.0 {
		t.Fatalf("balance = %v, want 10", v)
	}
}

func TestBlindWritesNeverConflict(t *testing.T) {
	// Paper §5.1.2: "In an application in which all operations are blind
	// writes ... there are no update inconsistencies, because concurrency
	// control tests never fail."
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	refs := h.joined(KindInt, "wb", int64(0), 1, 2)

	var handles []*Handle
	for k := 0; k < 10; k++ {
		v := int64(k)
		handles = append(handles, h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
			return tx.Write(refs[1], v)
		}}))
		handles = append(handles, h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
			return tx.Write(refs[2], v+100)
		}}))
	}
	for _, hd := range handles {
		if r := hd.Wait(); !r.Committed {
			t.Fatalf("blind write aborted: %+v", r)
		}
	}
	st1 := h.site(1).Stats()
	st2 := h.site(2).Stats()
	if st1.ConflictAborts != 0 || st2.ConflictAborts != 0 {
		t.Fatalf("blind writes caused aborts: %d / %d", st1.ConflictAborts, st2.ConflictAborts)
	}
	// Replicas converge to the same final value.
	h.eventually(2*time.Second, "convergence", func() bool {
		return h.committedInt(1, refs[1]) == h.committedInt(2, refs[2])
	})
}

func TestRCDependencyChain(t *testing.T) {
	// A transaction reading an uncommitted value must not commit before
	// the writer does (read-committed guess).
	h := newHarness(t, 2, transport.Config{Latency: 5 * time.Millisecond})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)
	other, _ := h.site(2).CreateObject(KindInt, "local", int64(0))

	// Writer from site 2 (primary is site 1, so commit takes ~2 RTT).
	w := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(refs[2], int64(5))
	}})
	<-w.Applied()
	// Reader at site 2 reads the uncommitted 5 and writes it elsewhere.
	r := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		v, _ := tx.Read(refs[2])
		return tx.Write(other, v.(int64))
	}})
	rw, rr := w.Wait(), r.Wait()
	if !rw.Committed || !rr.Committed {
		t.Fatalf("results: %+v / %+v", rw, rr)
	}
	if got := h.committedInt(2, other); got != 5 {
		t.Fatalf("dependent value = %d, want 5", got)
	}
}

func TestStatsCounters(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)
	if r := h.setInt(1, refs[1], 1); !r.Committed {
		t.Fatal("write failed")
	}
	st := h.site(1).Stats()
	if st.Submitted == 0 || st.Commits == 0 || st.MessagesSent == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

func TestTooManyRetries(t *testing.T) {
	// A transaction that always programs success but always conflicts is
	// hard to build deterministically; instead verify the budget wiring
	// with MaxRetries=1 and a transaction forced to conflict by a rigged
	// reservation at the primary.
	net := transport.NewNetwork(transport.Config{})
	defer net.Close()
	ep1, _ := net.Endpoint(1)
	ep2, _ := net.Endpoint(2)
	s1 := NewSite(ep1, Options{MaxRetries: 1})
	s2 := NewSite(ep2, Options{MaxRetries: 1})
	s1.Start()
	s2.Start()
	defer s1.Stop()
	defer s2.Stop()

	ref1, _ := s1.CreateObject(KindInt, "x", int64(0))
	ref2, _ := s2.CreateObject(KindInt, "x", int64(0))
	if res := s2.JoinObject(ref2, 1, ref1.ID()).Wait(); !res.Committed {
		t.Fatalf("join: %+v", res)
	}

	// Rig: reserve a huge write-free interval at the primary (site 1)
	// owned by a fake transaction, so every write from site 2 conflicts.
	_ = s1.call(func() {
		o := ref1.o
		o.res.Reserve(vtime.Interval{Lo: vtime.Zero, Hi: vtime.VT{Time: 1 << 40, Site: 1}}, vtime.VT{Time: 1 << 41, Site: 1})
	})

	res := s2.Submit(&Txn{Execute: func(tx *Tx) error {
		v, _ := tx.Read(ref2)
		return tx.Write(ref2, v.(int64)+1)
	}}).Wait()
	if res.Err == nil {
		t.Fatalf("result = %+v, want retry exhaustion", res)
	}
}
