package engine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"decaf/internal/transport"
)

func TestAuthorizerDeniesJoin(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	ref1, _ := h.site(1).CreateObject(KindInt, "secret", int64(0))

	h.site(1).SetAuthorizer(func(req AuthRequest) error {
		if req.Kind == AuthJoin && req.Requester == 2 {
			return errors.New("site 2 is not trusted")
		}
		return nil
	})

	ref2, _ := h.site(2).CreateObject(KindInt, "secret", int64(0))
	res := h.site(2).JoinObject(ref2, 1, ref1.ID()).Wait()
	if res.Committed || res.Err == nil {
		t.Fatalf("unauthorized join: %+v", res)
	}
	sites, _ := h.site(1).ReplicaSites(ref1)
	if len(sites) != 1 {
		t.Fatalf("graph grew despite denial: %v", sites)
	}
}

func TestAuthorizerAllowsSelectedJoin(t *testing.T) {
	h := newHarness(t, 3, transport.Config{})
	ref1, _ := h.site(1).CreateObject(KindInt, "doc", int64(0))
	h.site(1).SetAuthorizer(func(req AuthRequest) error {
		if req.Kind == AuthJoin && req.Requester == 3 {
			return errors.New("no")
		}
		return nil
	})
	ref2, _ := h.site(2).CreateObject(KindInt, "doc", int64(0))
	if res := h.site(2).JoinObject(ref2, 1, ref1.ID()).Wait(); !res.Committed {
		t.Fatalf("authorized join denied: %+v", res)
	}
	ref3, _ := h.site(3).CreateObject(KindInt, "doc", int64(0))
	if res := h.site(3).JoinObject(ref3, 1, ref1.ID()).Wait(); res.Committed {
		t.Fatal("unauthorized join succeeded")
	}
}

func TestAuthorizerDeniesRemoteWrite(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	refs := h.joined(KindInt, "x", int64(0), 1, 2)

	// After joining, site 1 (the primary) stops accepting writes from
	// site 2: every remote transaction aborts at its origin.
	h.site(1).SetAuthorizer(func(req AuthRequest) error {
		if req.Kind == AuthWrite && req.Requester == 2 {
			return errors.New("read-only collaborator")
		}
		return nil
	})

	// Writes from site 1 (the owner) still work.
	if res := h.setInt(1, refs[1], 5); !res.Committed {
		t.Fatalf("owner write: %+v", res)
	}
	h.eventually(2*time.Second, "owner write replicates", func() bool {
		return h.committedInt(2, refs[2]) == 5
	})

	// A write from site 2 is denied at the primary and aborts after the
	// retry budget (the denial is not transient).
	net2 := h.site(2)
	done := make(chan Result, 1)
	go func() {
		done <- net2.Submit(&Txn{Execute: func(tx *Tx) error { return tx.Write(refs[2], int64(9)) }}).Wait()
	}()
	select {
	case res := <-done:
		if res.Committed {
			t.Fatalf("unauthorized write committed: %+v", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unauthorized write never resolved")
	}
	// The optimistic local value was rolled back.
	if v, _ := h.site(2).ReadCurrent(refs[2]); v != int64(5) {
		t.Fatalf("current at site 2 = %v, want rolled back to 5", v)
	}
}

func TestAuthorizerCleared(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	ref1, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	h.site(1).SetAuthorizer(func(req AuthRequest) error { return errors.New("locked") })
	ref2, _ := h.site(2).CreateObject(KindInt, "x", int64(0))
	if res := h.site(2).JoinObject(ref2, 1, ref1.ID()).Wait(); res.Committed {
		t.Fatal("join while locked succeeded")
	}
	h.site(1).SetAuthorizer(nil)
	ref2b, _ := h.site(2).CreateObject(KindInt, "x", int64(0))
	if res := h.site(2).JoinObject(ref2b, 1, ref1.ID()).Wait(); !res.Committed {
		t.Fatalf("join after unlock failed: %+v", res)
	}
}

func TestAuthKindString(t *testing.T) {
	for k, want := range map[AuthKind]string{AuthJoin: "join", AuthWrite: "write", AuthRead: "read"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := AuthKind(99).String(); got != "AuthKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestAuthorizerErrorCarriesContext(t *testing.T) {
	h := newHarness(t, 2, transport.Config{})
	ref1, _ := h.site(1).CreateObject(KindInt, "vault", int64(0))
	h.site(1).SetAuthorizer(func(req AuthRequest) error {
		return fmt.Errorf("policy says no to %s", req.Desc)
	})
	ref2, _ := h.site(2).CreateObject(KindInt, "vault", int64(0))
	res := h.site(2).JoinObject(ref2, 1, ref1.ID()).Wait()
	if res.Err == nil {
		t.Fatal("no error")
	}
	if !errors.Is(res.Err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted wrap", res.Err)
	}
}
