// Package engine implements the DECAF site runtime: model objects with
// versioned histories, the optimistic concurrency-control transaction
// engine (paper §3), the view-notification engine (paper §4), dynamic
// collaboration establishment (§3.3), and failure handling (§3.4).
//
// Each Site runs a single event-loop goroutine that owns all site state;
// controllers submit transactions into the loop and user callbacks (views,
// abort handlers) run on a separate notifier goroutine with immutable
// snapshot data, so user code never races with the engine.
package engine

import (
	"fmt"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Kind aliases the wire-level model-object kind enumeration.
type Kind = wire.ChildKind

// Re-exported model object kinds.
const (
	KindInt         = wire.KindInt
	KindFloat       = wire.KindFloat
	KindString      = wire.KindString
	KindBool        = wire.KindBool
	KindList        = wire.KindList
	KindTuple       = wire.KindTuple
	KindAssociation = wire.KindAssociation
)

// listElem is one element slot of a list object. Tombstoned slots are
// retained so that concurrent inserts converge to the same order at every
// replica (the element tags give the paper's VT-tagged path indices).
type listElem struct {
	tag   wire.ElemTag
	child *object
	// insertVT is the transaction that embedded the element; removals are
	// the transactions that removed it (several sites may remove the same
	// element concurrently; aborted removals are withdrawn by undo).
	insertVT vtime.VT
	removals []vtime.VT
}

// tupleEntry is one key slot of a tuple object. Concurrent sets of the
// same key coexist as separate entries; the one with the greatest insert
// VT is the live value (deterministic at every replica regardless of
// arrival order).
type tupleEntry struct {
	key      string
	child    *object
	insertVT vtime.VT
	removals []vtime.VT
}

// pendingIndirect is an indirect-propagation update that arrived before
// the structural operation creating part of its path (paper §3.2.1: "the
// propagation will block until the earlier update is received").
type pendingIndirect struct {
	txnVT  vtime.VT
	origin vtime.SiteID
	upd    wire.Update
}

// object is one model object replica at one site. All access is confined
// to the owning site's event loop.
type object struct {
	id   ids.ObjectID
	kind Kind
	desc string
	site *Site

	// hist is the value history. For scalar objects the versions carry
	// the value; for composites they carry the structural op that
	// changed the composite (embed/remove), giving composites their own
	// read/write times; for associations they carry []wire.Relationship.
	hist history.History
	// res is the write-free reservation table, meaningful when this
	// site hosts the object's primary copy.
	res history.Reservations

	// graph is the current replication graph; graphVT the VT at which
	// it was last changed; graphHist the replication-graph history.
	// Indirect children have a nil graph and inherit the root's.
	graph     *repgraph.Graph
	graphVT   vtime.VT
	graphHist history.History
	graphRes  history.Reservations

	// proxies are the view proxies attached locally to this object.
	proxies []*viewProxy

	// Composite linkage.
	parent     *object
	parentLink wire.PathElem
	elems      []listElem   // list children, ordered, with tombstones
	entries    []tupleEntry // tuple children with tombstones
	pending    []pendingIndirect
}

// An embedded object with a non-nil graph uses DIRECT propagation (paper
// §3.2.2): it is its own replication root. See promote.go.

// newObject creates a local object with a fresh ID and a single-node
// replication graph.
func (s *Site) newObject(kind Kind, desc string, initial any) *object {
	s.nextSeq++
	o := &object{
		id:   ids.ObjectID{Site: s.id, Seq: s.nextSeq},
		kind: kind,
		desc: desc,
		site: s,
	}
	o.graph = repgraph.NewGraph(o.id, s.id)
	// Initial value at the zero VT, committed: objects are born with a
	// consistent value visible to snapshots at any time.
	if err := o.hist.Insert(vtime.Zero, initial, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: fresh history insert: %v", err))
	}
	if err := o.graphHist.Insert(vtime.Zero, o.graph, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: fresh graph insert: %v", err))
	}
	s.objects[o.id] = o
	return o
}

// newChildObject creates an object embedded in a composite (indirect
// propagation by default: nil own graph until it collaborates directly).
func (s *Site) newChildObject(parent *object, link wire.PathElem, decl wire.ChildDecl) *object {
	s.nextSeq++
	o := &object{
		id:     ids.ObjectID{Site: s.id, Seq: s.nextSeq},
		kind:   decl.Kind,
		desc:   fmt.Sprintf("%s%s", parent.desc, link),
		site:   s,
		parent: parent,
	}
	o.parentLink = link
	initial := decl.Value
	if initial == nil {
		initial = defaultValue(decl.Kind)
	}
	if err := o.hist.Insert(vtime.Zero, initial, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: fresh child history insert: %v", err))
	}
	s.objects[o.id] = o
	return o
}

// defaultValue returns the initial value for a model-object kind.
func defaultValue(kind Kind) any {
	switch kind {
	case KindInt:
		return int64(0)
	case KindFloat:
		return float64(0)
	case KindString:
		return ""
	case KindBool:
		return false
	case KindAssociation:
		return []wire.Relationship(nil)
	default:
		return nil // composites carry structure, not a scalar value
	}
}

// isComposite reports whether the object embeds children.
func (o *object) isComposite() bool {
	return o.kind == KindList || o.kind == KindTuple
}

// root walks up to the outermost enclosing composite (or o itself).
func (o *object) root() *object {
	r := o
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// replicationRoot returns the object whose replication graph governs o's
// propagation: o itself when it has its own graph (standalone or direct
// propagation), else the nearest ancestor with a graph.
func (o *object) replicationRoot() *object {
	r := o
	for r.graph == nil && r.parent != nil {
		r = r.parent
	}
	return r
}

// pathFromRoot returns the VT-tagged path from o's replication root down
// to o (empty when o is its own replication root).
func (o *object) pathFromRoot() wire.Path {
	var rev []wire.PathElem
	for cur := o; cur.graph == nil && cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.parentLink)
	}
	// Reverse into root-first order.
	p := make(wire.Path, len(rev))
	for i, e := range rev {
		p[len(rev)-1-i] = e
	}
	return p
}

// pathFromContainer returns the VT-tagged path from the outermost
// enclosing composite down to o, regardless of o's own graph (used by the
// promotion protocol, which addresses counterparts through the tree).
func (o *object) pathFromContainer() wire.Path {
	var rev []wire.PathElem
	for cur := o; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.parentLink)
	}
	p := make(wire.Path, len(rev))
	for i, e := range rev {
		p[len(rev)-1-i] = e
	}
	return p
}

// refreshGraph re-derives the cached current graph from the graph
// history (after inserts, aborts, or out-of-order arrivals).
func (o *object) refreshGraph() {
	cur, ok := o.graphHist.Current()
	if !ok {
		return
	}
	if g, okG := cur.Value.(*repgraph.Graph); okG {
		o.graph = g
		o.graphVT = cur.VT
	}
}

// currentGraph returns the replication graph governing o (its own or the
// inherited root graph), together with the VT it was last changed at.
func (o *object) currentGraph() (*repgraph.Graph, vtime.VT) {
	r := o.replicationRoot()
	return r.graph, r.graphVT
}

// primarySite returns the site hosting o's primary copy.
func (o *object) primarySite() vtime.SiteID {
	g, _ := o.currentGraph()
	if g == nil {
		return o.site.id
	}
	p, ok := g.PrimarySite()
	if !ok {
		return o.site.id
	}
	return p
}

// replicaSites returns all sites hosting replicas of o (via its governing
// graph), excluding this site.
func (o *object) remoteSites() []vtime.SiteID {
	g, _ := o.currentGraph()
	if g == nil {
		return nil
	}
	var out []vtime.SiteID
	for _, s := range g.Sites() {
		if s != o.site.id {
			out = append(out, s)
		}
	}
	return out
}

// findChildByTag returns the list element with the given tag.
func (o *object) findChildByTag(tag wire.ElemTag) (int, *listElem) {
	for i := range o.elems {
		if o.elems[i].tag == tag {
			return i, &o.elems[i]
		}
	}
	return -1, nil
}

// removalEffective reports whether any removal at or below `at` applies
// (for committedOnly, only removals whose transaction committed count;
// otherwise every present removal counts — aborted ones are withdrawn by
// undo). A removal whose history version was garbage-collected is by
// construction committed: pending versions block GC and aborted removals
// are deleted from the slice.
func (o *object) removalEffective(removals []vtime.VT, at vtime.VT, committedOnly bool) bool {
	for _, r := range removals {
		if !r.LessEq(at) {
			continue
		}
		if committedOnly {
			if v, ok := o.hist.Get(r); ok && v.Status != history.Committed {
				continue // still pending
			}
		}
		return true
	}
	return false
}

// findEntry returns the live tuple entry for key: among non-removed
// entries, the one with the greatest insert VT (the deterministic winner
// of concurrent sets).
func (o *object) findEntry(key string) (int, *tupleEntry) {
	at := o.latestVT()
	best := -1
	for i := range o.entries {
		e := &o.entries[i]
		if e.key != key || o.removalEffective(e.removals, at, false) {
			continue
		}
		if best < 0 || o.entries[best].insertVT.Less(e.insertVT) {
			best = i
		}
	}
	if best < 0 {
		return -1, nil
	}
	return best, &o.entries[best]
}

// findEntryAt returns the exact entry for key inserted at `of`.
func (o *object) findEntryAt(key string, of vtime.VT) (int, *tupleEntry) {
	for i := range o.entries {
		if o.entries[i].key == key && o.entries[i].insertVT == of {
			return i, &o.entries[i]
		}
	}
	return -1, nil
}

// resolvePath walks a VT-tagged path from o down to the addressed child,
// for primary-copy CHECKS: it reports removed components (an RL path
// guess failure — any removal, committed or pending, conservatively
// denies; a wrongly denied transaction simply retries). blocked reports a
// component whose structural op has not yet arrived (indirect propagation
// must block, §3.2.1).
func (o *object) resolvePath(p wire.Path) (child *object, removed bool, blocked bool) {
	cur := o
	for _, elem := range p {
		if elem.IsKey {
			if cur.kind != KindTuple {
				return nil, false, false
			}
			var ent *tupleEntry
			if !elem.Tag.VT.IsZero() {
				// Pinned identity: the exact entry the writer targeted.
				_, ent = cur.findEntryAt(elem.Key, elem.Tag.VT)
				if ent == nil {
					return nil, false, true // entry's set not yet received
				}
				if cur.removalEffective(ent.removals, cur.latestVT(), false) {
					return nil, true, false
				}
			} else {
				_, ent = cur.findEntry(elem.Key)
				if ent == nil {
					for i := range cur.entries {
						if cur.entries[i].key == elem.Key {
							return nil, true, false
						}
					}
					return nil, false, true
				}
			}
			cur = ent.child
		} else {
			if cur.kind != KindList {
				return nil, false, false
			}
			_, le := cur.findChildByTag(elem.Tag)
			if le == nil {
				return nil, false, true // structural op not yet received
			}
			if cur.removalEffective(le.removals, cur.latestVT(), false) {
				return nil, true, false
			}
			cur = le.child
		}
	}
	return cur, false, false
}

// resolvePathForApply walks a path for UPDATE APPLICATION: tombstoned
// components are traversed (the transaction's fate was decided at the
// primary; a replica with a pending local removal must still apply the
// update so all replicas converge whichever way the removal resolves).
// blocked reports a component whose structural op has not yet arrived.
func (o *object) resolvePathForApply(p wire.Path) (child *object, blocked bool) {
	cur := o
	for _, elem := range p {
		if elem.IsKey {
			if cur.kind != KindTuple {
				return nil, false
			}
			var ent *tupleEntry
			if !elem.Tag.VT.IsZero() {
				_, ent = cur.findEntryAt(elem.Key, elem.Tag.VT)
			} else {
				// Legacy unpinned path: latest entry for the key,
				// tombstoned or not.
				best := -1
				for i := range cur.entries {
					if cur.entries[i].key != elem.Key {
						continue
					}
					if best < 0 || cur.entries[best].insertVT.Less(cur.entries[i].insertVT) {
						best = i
					}
				}
				if best >= 0 {
					ent = &cur.entries[best]
				}
			}
			if ent == nil {
				return nil, true
			}
			cur = ent.child
		} else {
			if cur.kind != KindList {
				return nil, false
			}
			_, le := cur.findChildByTag(elem.Tag)
			if le == nil {
				return nil, true
			}
			cur = le.child
		}
	}
	return cur, false
}

// visibleElems returns the indices of live (non-tombstoned) list elements,
// in order. When committedOnly is set, elements whose insert is not yet
// committed are excluded and only committed removals hide an element.
func (o *object) visibleElems(at vtime.VT, committedOnly bool) []int {
	var out []int
	for i := range o.elems {
		e := &o.elems[i]
		if !e.insertVT.LessEq(at) {
			continue
		}
		if committedOnly {
			if v, ok := o.hist.Get(e.insertVT); ok && v.Status != history.Committed {
				continue
			}
		}
		if o.removalEffective(e.removals, at, committedOnly) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// visibleEntries returns the live tuple entries: per key, the non-removed
// entry with the greatest insert VT at or below `at`.
func (o *object) visibleEntries(at vtime.VT, committedOnly bool) []int {
	bestByKey := map[string]int{}
	for i := range o.entries {
		e := &o.entries[i]
		if !e.insertVT.LessEq(at) {
			continue
		}
		if committedOnly {
			if v, ok := o.hist.Get(e.insertVT); ok && v.Status != history.Committed {
				continue
			}
		}
		if o.removalEffective(e.removals, at, committedOnly) {
			continue
		}
		if prev, ok := bestByKey[e.key]; !ok || o.entries[prev].insertVT.Less(e.insertVT) {
			bestByKey[e.key] = i
		}
	}
	out := make([]int, 0, len(bestByKey))
	for i := range o.entries {
		if best, ok := bestByKey[o.entries[i].key]; ok && best == i {
			out = append(out, i)
		}
	}
	return out
}

// readValue materializes o's value at virtual time `at`: scalars return
// the version value; composites return a structured value ([]any for
// lists, map[string]any for tuples) built recursively.
func (o *object) readValue(at vtime.VT, committedOnly bool) any {
	switch o.kind {
	case KindList:
		idxs := o.visibleElems(at, committedOnly)
		out := make([]any, 0, len(idxs))
		for _, i := range idxs {
			out = append(out, o.elems[i].child.readValue(at, committedOnly))
		}
		return out
	case KindTuple:
		idxs := o.visibleEntries(at, committedOnly)
		out := make(map[string]any, len(idxs))
		for _, i := range idxs {
			e := &o.entries[i]
			out[e.key] = e.child.readValue(at, committedOnly)
		}
		return out
	default:
		var v history.Version
		var ok bool
		if committedOnly {
			v, ok = o.hist.CommittedAt(at)
		} else {
			v, ok = o.hist.At(at)
		}
		if !ok {
			return defaultValue(o.kind)
		}
		return v.Value
	}
}

// latestVT returns the VT of the newest version affecting o, including —
// for composites — versions of embedded children (so that snapshot times
// cover child updates).
func (o *object) latestVT() vtime.VT {
	v := vtime.Zero
	if cur, ok := o.hist.Current(); ok {
		v = cur.VT
	}
	switch o.kind {
	case KindList:
		for i := range o.elems {
			e := &o.elems[i]
			v = v.Max(e.child.latestVT())
			for _, r := range e.removals {
				v = v.Max(r)
			}
		}
	case KindTuple:
		for i := range o.entries {
			e := &o.entries[i]
			v = v.Max(e.child.latestVT())
			for _, r := range e.removals {
				v = v.Max(r)
			}
		}
	}
	return v
}

// forEachDescendant visits o and every embedded child.
func (o *object) forEachDescendant(fn func(*object)) {
	fn(o)
	for i := range o.elems {
		o.elems[i].child.forEachDescendant(fn)
	}
	for i := range o.entries {
		o.entries[i].child.forEachDescendant(fn)
	}
}

// attachedProxies returns the view proxies that observe o: those attached
// to o itself and to any enclosing composite (a view attached to a
// composite receives notifications for changes to its children, §2.5).
func (o *object) attachedProxies() []*viewProxy {
	var out []*viewProxy
	seen := map[*viewProxy]bool{}
	for cur := o; cur != nil; cur = cur.parent {
		for _, p := range cur.proxies {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}
