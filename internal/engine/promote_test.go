package engine

import (
	"reflect"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/wire"
)

// Tests for direct propagation of embedded objects (paper §3.2.2 and the
// Fig. 7 configuration: a node B embedded in a replicated tree whose own
// replica set differs from the tree's).

// buildSharedTree creates a 2-site replicated tuple with one Int child
// "b" and returns the tuple refs and the child refs at each site.
func buildSharedTree(t *testing.T, h *harness) (tup map[int]ObjRef, child map[int]ObjRef) {
	t.Helper()
	tup = h.joined(KindTuple, "tree", nil, 1, 2)
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		_, err := tx.TupleSet(tup[1], "b", wire.ChildDecl{Kind: KindInt, Value: int64(1)})
		return err
	}}).Wait(); !res.Committed {
		t.Fatalf("embed: %+v", res)
	}
	child = map[int]ObjRef{}
	for i := 1; i <= 2; i++ {
		i := i
		h.eventually(2*time.Second, "child materialized", func() bool {
			var ok bool
			_ = h.site(i).call(func() {
				c, blocked := tup[i].o.resolvePathForApply(wire.Path{{IsKey: true, Key: "b"}})
				if c != nil && !blocked {
					child[i] = ObjRef{o: c}
					ok = true
				}
			})
			return ok
		})
	}
	return tup, child
}

func TestPromoteGivesChildItsOwnGraph(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	_, child := buildSharedTree(t, h)

	res := h.site(1).Promote(child[1]).Wait()
	if !res.Committed {
		t.Fatalf("promote: %+v", res)
	}
	// Both counterparts now carry their own (shared) graph.
	h.eventually(2*time.Second, "both counterparts direct", func() bool {
		ok := true
		for i := 1; i <= 2; i++ {
			i := i
			_ = h.site(i).call(func() {
				if child[i].o.graph == nil || child[i].o.graph.NumNodes() != 2 {
					ok = false
				}
			})
		}
		return ok
	})
	// The child's primary follows the tree's primary (site 1 anchored).
	p, _ := h.site(1).PrimarySite(child[1])
	if p != 1 {
		t.Fatalf("promoted child primary = %v, want 1", p)
	}
}

func TestPromoteIsIdempotent(t *testing.T) {
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	_, child := buildSharedTree(t, h)
	if res := h.site(1).Promote(child[1]).Wait(); !res.Committed {
		t.Fatalf("first promote: %+v", res)
	}
	if res := h.site(1).Promote(child[1]).Wait(); !res.Committed {
		t.Fatalf("second promote: %+v", res)
	}
	// Promoting a standalone object is a no-op success.
	top, _ := h.site(1).CreateObject(KindInt, "x", int64(0))
	if res := h.site(1).Promote(top).Wait(); !res.Committed {
		t.Fatalf("standalone promote: %+v", res)
	}
}

func TestDirectChildUpdatesStillReachTree(t *testing.T) {
	// After promotion, updates to the child flow through ITS graph but
	// must still reach the counterparts inside the tree replicas.
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	tup, child := buildSharedTree(t, h)
	if res := h.site(1).Promote(child[1]).Wait(); !res.Committed {
		t.Fatalf("promote: %+v", res)
	}

	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(child[1], int64(42))
	}}).Wait(); !res.Committed {
		t.Fatalf("child write: %+v", res)
	}
	h.eventually(2*time.Second, "tree replica sees direct update", func() bool {
		v, _ := h.site(2).ReadCommitted(tup[2])
		m, _ := v.(map[string]any)
		return m != nil && m["b"] == int64(42)
	})
}

func TestFig7EmbeddedNodeWithDifferentReplicaSet(t *testing.T) {
	// The Fig. 7 configuration: the tree is replicated at sites 1 and 2;
	// the embedded node B additionally collaborates with site 3 (which
	// has no copy of the tree). B must use direct propagation so its
	// updates reach B' (site 2, inside the tree) AND B'' (site 3,
	// standalone) — and so the originating site knows the totality of
	// involved sites at commit time.
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	tup, child := buildSharedTree(t, h)

	outside, _ := h.site(3).CreateObject(KindInt, "B''", int64(0))
	// Joining the outside object to the embedded child auto-promotes it.
	if res := h.site(3).JoinObject(outside, 1, child[1].ID()).Wait(); !res.Committed {
		t.Fatalf("outside join: %+v", res)
	}

	h.eventually(2*time.Second, "child graph spans 3 sites", func() bool {
		sites, err := h.site(1).ReplicaSites(child[1])
		return err == nil && len(sites) == 3
	})

	// A write from the OUTSIDE member reaches both tree replicas.
	if res := h.site(3).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(outside, int64(7))
	}}).Wait(); !res.Committed {
		t.Fatalf("outside write: %+v", res)
	}
	h.eventually(2*time.Second, "both tree replicas updated", func() bool {
		for i := 1; i <= 2; i++ {
			v, _ := h.site(i).ReadCommitted(tup[i])
			m, _ := v.(map[string]any)
			if m == nil || m["b"] != int64(7) {
				return false
			}
		}
		return true
	})

	// And a write from inside the tree reaches the outside member.
	if res := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(child[2], int64(9))
	}}).Wait(); !res.Committed {
		t.Fatalf("inside write: %+v", res)
	}
	h.eventually(2*time.Second, "outside member updated", func() bool {
		v, _ := h.site(3).ReadCommitted(outside)
		return v == int64(9)
	})
}

func TestDirectChildSurvivesTreeGrowth(t *testing.T) {
	// "The parent node notifies the collaborating embedded node of all
	// changes to its replica graph": when a NEW site joins the tree, the
	// direct child's graph gains the new counterpart, and direct updates
	// reach it.
	h := newHarness(t, 3, transport.Config{Latency: time.Millisecond})
	tup, child := buildSharedTree(t, h)
	if res := h.site(1).Promote(child[1]).Wait(); !res.Committed {
		t.Fatalf("promote: %+v", res)
	}

	// Site 3 joins the TREE.
	t3, _ := h.site(3).CreateObject(KindTuple, "tree", nil)
	if res := h.site(3).JoinObject(t3, 1, tup[1].ID()).Wait(); !res.Committed {
		t.Fatalf("tree join: %+v", res)
	}
	h.eventually(3*time.Second, "structure copied to site 3", func() bool {
		v, _ := h.site(3).ReadCurrent(t3)
		m, _ := v.(map[string]any)
		return m != nil && m["b"] != nil
	})

	// The refresh (triggered at the child's primary when the root graph
	// commit lands) must extend the child's graph to 3 sites.
	h.eventually(5*time.Second, "child graph refreshed to 3 sites", func() bool {
		sites, err := h.site(1).ReplicaSites(child[1])
		return err == nil && len(sites) == 3
	})

	// A direct child write now reaches the new tree member too.
	if res := h.site(1).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(child[1], int64(55))
	}}).Wait(); !res.Committed {
		t.Fatalf("child write: %+v", res)
	}
	h.eventually(3*time.Second, "new member sees direct update", func() bool {
		v, _ := h.site(3).ReadCommitted(t3)
		m, _ := v.(map[string]any)
		return m != nil && m["b"] == int64(55)
	})
}

func TestPromotedChildStateConsistency(t *testing.T) {
	// Reads through the tree and through the direct child agree.
	h := newHarness(t, 2, transport.Config{Latency: time.Millisecond})
	tup, child := buildSharedTree(t, h)
	if res := h.site(1).Promote(child[1]).Wait(); !res.Committed {
		t.Fatal("promote failed")
	}
	if res := h.site(2).Submit(&Txn{Execute: func(tx *Tx) error {
		return tx.Write(child[2], int64(11))
	}}).Wait(); !res.Committed {
		t.Fatal("write failed")
	}
	h.eventually(2*time.Second, "consistency across addressing modes", func() bool {
		direct, _ := h.site(1).ReadCommitted(child[1])
		viaTree, _ := h.site(1).ReadCommitted(tup[1])
		m, _ := viaTree.(map[string]any)
		return direct == int64(11) && m != nil && reflect.DeepEqual(m["b"], int64(11))
	})
}
