package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Persistence store (paper §5.3: "We are also incorporating a persistence
// store and recovery ... into the algorithms of DECAF").
//
// Checkpoint serializes a site's committed state: every top-level model
// object with its latest committed value (composites recursively, keeping
// their VT element tags so cross-site paths stay valid), its replication
// graph, and the site's clock and sequence counters. Restore loads a
// checkpoint into a fresh site with the same site ID.
//
// Format: version 2 uses the internal/wire hand codec (deterministic
// bytes, no gob type registry); version-1 gob checkpoints are still
// loaded — the stream is sniffed via wire.IsCheckpoint, which can never
// misfire because a gob stream cannot start with 0x00.
//
// Semantics: a checkpoint captures committed state only — in-flight
// optimistic state is deliberately excluded (it would be undone on abort
// anyway). Restoring a single member of a live collaboration is the
// "rejoin as a new member" path of §3.4; restoring ALL members from
// mutually consistent checkpoints resumes the collaboration in place.
// On a WAL-attached site, Checkpoint also appends a covering RecordMark
// so Recover knows where the checkpoint's log coverage ends (DESIGN.md
// §13).

// checkpointVersionV1 is the legacy gob format, still readable.
const checkpointVersionV1 = 1

// objCheckpoint is one persisted model object (v1 gob format).
type objCheckpoint struct {
	ID      ids.ObjectID
	Kind    wire.ChildKind
	Desc    string
	Value   any      // scalar value or []wire.Relationship; nil for composites
	ValueVT vtime.VT // VT of the committed value
	Graph   repgraph.Wire
	GraphVT vtime.VT
	// Children carries composite structure, recursively.
	Children []childCheckpoint
}

// childCheckpoint is one embedded child with its identity tags (v1 gob
// format).
type childCheckpoint struct {
	Tag      wire.ElemTag // list element tag (zero for tuple entries)
	Key      string       // tuple key (empty for list elements)
	InsertVT vtime.VT
	Kind     wire.ChildKind
	Value    any
	ValueVT  vtime.VT
	Children []childCheckpoint
}

// siteCheckpoint is the serialized site (v1 gob format).
type siteCheckpoint struct {
	Version uint32
	Site    vtime.SiteID
	NextSeq uint64
	Clock   vtime.VT
	Objects []objCheckpoint
}

func init() {
	gob.Register(siteCheckpoint{})
}

// Checkpoint writes the site's committed state to w. On a WAL-attached
// site it also appends the covering marker to the log, inside the same
// event-loop call that captures the state, so the marker's position
// exactly bounds the checkpoint's coverage.
func (s *Site) Checkpoint(w io.Writer) error {
	var cp wire.Checkpoint
	var markErr error
	err := s.call(func() {
		cp = s.buildCheckpoint()
		if s.wal != nil {
			s.checkpointSeq++
			cp.Seq = s.checkpointSeq
			markErr = s.wal.Mark(cp.Seq)
			if markErr == nil && len(s.disconnected) == 0 && len(s.parkedFailures) == 0 {
				// Segments only become droppable once a newer marker
				// covers them, so a checkpoint is the one moment
				// truncation can make progress. Everything below the
				// GC floor is globally decided; TruncateBelow itself
				// refuses to cross the newest marker. While any peer is
				// known to be offline the whole backlog stays shippable,
				// so truncation waits for the reconnect.
				if terr := s.wal.TruncateBelow(s.combinedGCFloor().Time); terr != nil {
					s.log.Warn("wal truncate failed", "err", terr)
				}
			}
		}
	})
	if err != nil {
		return err
	}
	if markErr != nil {
		return fmt.Errorf("engine: checkpoint wal marker: %w", markErr)
	}
	b, err := wire.EncodeCheckpoint(cp)
	if err != nil {
		return fmt.Errorf("engine: encode checkpoint: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("engine: write checkpoint: %w", err)
	}
	return nil
}

// buildCheckpoint captures the committed state, inside the loop.
func (s *Site) buildCheckpoint() wire.Checkpoint {
	cp := wire.Checkpoint{
		Site:    s.id,
		NextSeq: s.nextSeq,
		Clock:   s.clock.Now(),
		Floors:  s.floorList(),
	}
	// ID-sorted so the checkpoint bytes are a pure function of the
	// committed state: two converged replicas (or the same site
	// checkpointed twice) must encode identically.
	for _, id := range sortedObjectIDs(s.objects) {
		o := s.objects[id]
		if o.parent != nil {
			continue // children ride inside their composite root
		}
		cp.Objects = append(cp.Objects, s.checkpointObject(o))
	}
	return cp
}

// checkpointObject captures one top-level object.
func (s *Site) checkpointObject(o *object) wire.CheckpointObject {
	oc := wire.CheckpointObject{ID: o.id, Kind: o.kind, Desc: o.desc}
	if v, ok := o.hist.CurrentCommitted(); ok && !o.isComposite() {
		oc.Value, oc.ValueVT = v.Value, v.VT
	}
	if o.graph != nil {
		oc.Graph = o.graph.ToWire()
		oc.GraphVT = o.graphVT
	}
	if o.isComposite() {
		oc.Children = checkpointChildren(o)
	}
	return oc
}

// checkpointChildren captures a composite's live committed structure.
func checkpointChildren(o *object) []wire.CheckpointChild {
	at := o.latestCommittedVT()
	var out []wire.CheckpointChild
	appendChild := func(child *object, tag wire.ElemTag, key string, insertVT vtime.VT) {
		cc := wire.CheckpointChild{Tag: tag, Key: key, InsertVT: insertVT, Kind: child.kind}
		if v, ok := child.hist.CurrentCommitted(); ok && !child.isComposite() {
			cc.Value, cc.ValueVT = v.Value, v.VT
		}
		if child.isComposite() {
			cc.Children = checkpointChildren(child)
		}
		out = append(out, cc)
	}
	switch o.kind {
	case KindList:
		for _, i := range o.visibleElems(at, true) {
			e := &o.elems[i]
			appendChild(e.child, e.tag, "", e.insertVT)
		}
	case KindTuple:
		for _, i := range o.visibleEntries(at, true) {
			e := &o.entries[i]
			appendChild(e.child, wire.ElemTag{}, e.key, e.insertVT)
		}
	}
	return out
}

// Restore loads a checkpoint (either format version) into this (fresh,
// same-ID) site.
func (s *Site) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("engine: read checkpoint: %w", err)
	}
	cp, err := decodeAnyCheckpoint(data)
	if err != nil {
		return err
	}
	if cp.Site != s.id {
		return fmt.Errorf("engine: checkpoint is for site %s, this site is %s", cp.Site, s.id)
	}
	var restoreErr error
	err = s.call(func() { restoreErr = s.restoreCheckpointState(cp) })
	if err != nil {
		return err
	}
	return restoreErr
}

// decodeAnyCheckpoint sniffs and decodes either checkpoint format.
func decodeAnyCheckpoint(data []byte) (wire.Checkpoint, error) {
	if wire.IsCheckpoint(data) {
		cp, err := wire.DecodeCheckpoint(data)
		if err != nil {
			return wire.Checkpoint{}, fmt.Errorf("engine: %w", err)
		}
		return cp, nil
	}
	var v1 siteCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v1); err != nil {
		return wire.Checkpoint{}, fmt.Errorf("engine: decode checkpoint: %w", err)
	}
	if v1.Version != checkpointVersionV1 {
		return wire.Checkpoint{}, fmt.Errorf("engine: checkpoint version %d unsupported", v1.Version)
	}
	return v1Checkpoint(v1), nil
}

// v1Checkpoint lifts a legacy gob checkpoint into the current form.
// Legacy checkpoints carry no WAL marker and no floors.
func v1Checkpoint(v1 siteCheckpoint) wire.Checkpoint {
	cp := wire.Checkpoint{Site: v1.Site, NextSeq: v1.NextSeq, Clock: v1.Clock}
	for _, oc := range v1.Objects {
		cp.Objects = append(cp.Objects, wire.CheckpointObject{
			ID:       oc.ID,
			Kind:     oc.Kind,
			Desc:     oc.Desc,
			Value:    oc.Value,
			ValueVT:  oc.ValueVT,
			Graph:    oc.Graph,
			GraphVT:  oc.GraphVT,
			Children: v1Children(oc.Children),
		})
	}
	return cp
}

func v1Children(children []childCheckpoint) []wire.CheckpointChild {
	var out []wire.CheckpointChild
	for _, cc := range children {
		out = append(out, wire.CheckpointChild{
			Tag:      cc.Tag,
			Key:      cc.Key,
			InsertVT: cc.InsertVT,
			Kind:     cc.Kind,
			Value:    cc.Value,
			ValueVT:  cc.ValueVT,
			Children: v1Children(cc.Children),
		})
	}
	return out
}

// restoreCheckpointState loads cp into the site, inside the loop. Shared
// by Restore and Recover.
func (s *Site) restoreCheckpointState(cp wire.Checkpoint) error {
	if len(s.objects) != 0 {
		return fmt.Errorf("engine: restore requires a fresh site (has %d objects)", len(s.objects))
	}
	s.clock.Observe(cp.Clock)
	if cp.NextSeq > s.nextSeq {
		s.nextSeq = cp.NextSeq
	}
	for _, f := range cp.Floors {
		if f.Time > s.syncFloors[f.Site] {
			s.syncFloors[f.Site] = f.Time
		}
	}
	if t := s.syncFloors[s.id]; t > s.maxOwnDecided {
		s.maxOwnDecided = t
	}
	for _, oc := range cp.Objects {
		s.restoreObject(oc)
	}
	return nil
}

// restoreObject reconstructs one top-level object with its original ID.
func (s *Site) restoreObject(oc wire.CheckpointObject) {
	o := &object{
		id:   oc.ID,
		kind: oc.Kind,
		desc: oc.Desc,
		site: s,
	}
	// The committed value is re-inserted at its original VT so future
	// reads and checks order correctly against it; a value still at the
	// zero VT (never overwritten) becomes the base version itself.
	base := defaultValue(oc.Kind)
	if oc.ValueVT.IsZero() && oc.Value != nil {
		base = oc.Value
	}
	if err := o.hist.Insert(vtime.Zero, base, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: restore base insert: %v", err))
	}
	if !oc.ValueVT.IsZero() {
		_ = o.hist.Insert(oc.ValueVT, oc.Value, history.Committed)
	}
	if len(oc.Graph.Nodes) > 0 {
		o.graph = repgraph.FromWire(oc.Graph)
		o.graphVT = oc.GraphVT
	} else {
		o.graph = repgraph.NewGraph(o.id, s.id)
	}
	if err := o.graphHist.Insert(o.graphVT, o.graph, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: restore graph insert: %v", err))
	}
	s.objects[o.id] = o
	s.restoreChildren(o, oc.Children)
}

// restoreChildren rebuilds composite structure with the original tags.
func (s *Site) restoreChildren(parent *object, children []wire.CheckpointChild) {
	for _, cc := range children {
		link := wire.PathElem{Tag: cc.Tag}
		if cc.Key != "" {
			link = wire.PathElem{IsKey: true, Key: cc.Key, Tag: wire.ElemTag{VT: cc.InsertVT}}
		}
		decl := wire.ChildDecl{Kind: cc.Kind, Value: cc.Value}
		child := s.newChildObject(parent, link, decl)
		if !cc.ValueVT.IsZero() && !child.isComposite() {
			_ = child.hist.Insert(cc.ValueVT, cc.Value, history.Committed)
		}
		switch parent.kind {
		case KindList:
			parent.elems = append(parent.elems, listElem{tag: cc.Tag, child: child, insertVT: cc.InsertVT})
		case KindTuple:
			parent.entries = append(parent.entries, tupleEntry{key: cc.Key, child: child, insertVT: cc.InsertVT})
		}
		// Structural facts are part of the composite's committed history.
		if !cc.InsertVT.IsZero() {
			if _, ok := parent.hist.Get(cc.InsertVT); !ok {
				_ = parent.hist.Insert(cc.InsertVT, []wire.Op(nil), history.Committed)
			}
		}
		s.restoreChildren(child, cc.Children)
	}
}

// Objects returns the refs of all top-level objects, for post-restore
// discovery (sorted by ID).
func (s *Site) Objects() ([]ObjRef, error) {
	var out []ObjRef
	err := s.call(func() {
		// ID-sorted iteration gives the deterministic order directly.
		for _, id := range sortedObjectIDs(s.objects) {
			if o := s.objects[id]; o.parent == nil {
				out = append(out, ObjRef{o: o})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, err
}
