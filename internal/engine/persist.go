package engine

import (
	"encoding/gob"
	"fmt"
	"io"

	"decaf/internal/history"
	"decaf/internal/ids"
	"decaf/internal/repgraph"
	"decaf/internal/vtime"
	"decaf/internal/wire"
)

// Persistence store (paper §5.3: "We are also incorporating a persistence
// store and recovery ... into the algorithms of DECAF").
//
// Checkpoint serializes a site's committed state: every top-level model
// object with its latest committed value (composites recursively, keeping
// their VT element tags so cross-site paths stay valid), its replication
// graph, and the site's clock and sequence counters. Restore loads a
// checkpoint into a fresh site with the same site ID.
//
// Semantics: a checkpoint captures committed state only — in-flight
// optimistic state is deliberately excluded (it would be undone on abort
// anyway). Restoring a single member of a live collaboration is the
// "rejoin as a new member" path of §3.4; restoring ALL members from
// mutually consistent checkpoints resumes the collaboration in place.

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// objCheckpoint is one persisted model object.
type objCheckpoint struct {
	ID      ids.ObjectID
	Kind    wire.ChildKind
	Desc    string
	Value   any      // scalar value or []wire.Relationship; nil for composites
	ValueVT vtime.VT // VT of the committed value
	Graph   repgraph.Wire
	GraphVT vtime.VT
	// Children carries composite structure, recursively.
	Children []childCheckpoint
}

// childCheckpoint is one embedded child with its identity tags.
type childCheckpoint struct {
	Tag      wire.ElemTag // list element tag (zero for tuple entries)
	Key      string       // tuple key (empty for list elements)
	InsertVT vtime.VT
	Kind     wire.ChildKind
	Value    any
	ValueVT  vtime.VT
	Children []childCheckpoint
}

// siteCheckpoint is the serialized site.
type siteCheckpoint struct {
	Version uint32
	Site    vtime.SiteID
	NextSeq uint64
	Clock   vtime.VT
	Objects []objCheckpoint
}

func init() {
	gob.Register(siteCheckpoint{})
}

// Checkpoint writes the site's committed state to w.
func (s *Site) Checkpoint(w io.Writer) error {
	var cp siteCheckpoint
	err := s.call(func() {
		cp = siteCheckpoint{
			Version: checkpointVersion,
			Site:    s.id,
			NextSeq: s.nextSeq,
			Clock:   s.clock.Now(),
		}
		// ID-sorted so the checkpoint bytes are a pure function of the
		// committed state: two converged replicas (or the same site
		// checkpointed twice) must encode identically.
		for _, id := range sortedObjectIDs(s.objects) {
			o := s.objects[id]
			if o.parent != nil {
				continue // children ride inside their composite root
			}
			cp.Objects = append(cp.Objects, s.checkpointObject(o))
		}
	})
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("engine: encode checkpoint: %w", err)
	}
	return nil
}

// checkpointObject captures one top-level object.
func (s *Site) checkpointObject(o *object) objCheckpoint {
	oc := objCheckpoint{ID: o.id, Kind: o.kind, Desc: o.desc}
	if v, ok := o.hist.CurrentCommitted(); ok && !o.isComposite() {
		oc.Value, oc.ValueVT = v.Value, v.VT
	}
	if o.graph != nil {
		oc.Graph = o.graph.ToWire()
		oc.GraphVT = o.graphVT
	}
	if o.isComposite() {
		oc.Children = checkpointChildren(o)
	}
	return oc
}

// checkpointChildren captures a composite's live committed structure.
func checkpointChildren(o *object) []childCheckpoint {
	at := o.latestCommittedVT()
	var out []childCheckpoint
	appendChild := func(child *object, tag wire.ElemTag, key string, insertVT vtime.VT) {
		cc := childCheckpoint{Tag: tag, Key: key, InsertVT: insertVT, Kind: child.kind}
		if v, ok := child.hist.CurrentCommitted(); ok && !child.isComposite() {
			cc.Value, cc.ValueVT = v.Value, v.VT
		}
		if child.isComposite() {
			cc.Children = checkpointChildren(child)
		}
		out = append(out, cc)
	}
	switch o.kind {
	case KindList:
		for _, i := range o.visibleElems(at, true) {
			e := &o.elems[i]
			appendChild(e.child, e.tag, "", e.insertVT)
		}
	case KindTuple:
		for _, i := range o.visibleEntries(at, true) {
			e := &o.entries[i]
			appendChild(e.child, wire.ElemTag{}, e.key, e.insertVT)
		}
	}
	return out
}

// Restore loads a checkpoint into this (fresh, same-ID) site.
func (s *Site) Restore(r io.Reader) error {
	var cp siteCheckpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("engine: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("engine: checkpoint version %d unsupported", cp.Version)
	}
	if cp.Site != s.id {
		return fmt.Errorf("engine: checkpoint is for site %s, this site is %s", cp.Site, s.id)
	}
	var restoreErr error
	err := s.call(func() {
		if len(s.objects) != 0 {
			restoreErr = fmt.Errorf("engine: restore requires a fresh site (has %d objects)", len(s.objects))
			return
		}
		s.clock.Observe(cp.Clock)
		if cp.NextSeq > s.nextSeq {
			s.nextSeq = cp.NextSeq
		}
		for _, oc := range cp.Objects {
			s.restoreObject(oc)
		}
	})
	if err != nil {
		return err
	}
	return restoreErr
}

// restoreObject reconstructs one top-level object with its original ID.
func (s *Site) restoreObject(oc objCheckpoint) {
	o := &object{
		id:   oc.ID,
		kind: oc.Kind,
		desc: oc.Desc,
		site: s,
	}
	// The committed value is re-inserted at its original VT so future
	// reads and checks order correctly against it; a value still at the
	// zero VT (never overwritten) becomes the base version itself.
	base := defaultValue(oc.Kind)
	if oc.ValueVT.IsZero() && oc.Value != nil {
		base = oc.Value
	}
	if err := o.hist.Insert(vtime.Zero, base, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: restore base insert: %v", err))
	}
	if !oc.ValueVT.IsZero() {
		_ = o.hist.Insert(oc.ValueVT, oc.Value, history.Committed)
	}
	if len(oc.Graph.Nodes) > 0 {
		o.graph = repgraph.FromWire(oc.Graph)
		o.graphVT = oc.GraphVT
	} else {
		o.graph = repgraph.NewGraph(o.id, s.id)
	}
	if err := o.graphHist.Insert(o.graphVT, o.graph, history.Committed); err != nil {
		panic(fmt.Sprintf("engine: restore graph insert: %v", err))
	}
	s.objects[o.id] = o
	s.restoreChildren(o, oc.Children)
}

// restoreChildren rebuilds composite structure with the original tags.
func (s *Site) restoreChildren(parent *object, children []childCheckpoint) {
	for _, cc := range children {
		link := wire.PathElem{Tag: cc.Tag}
		if cc.Key != "" {
			link = wire.PathElem{IsKey: true, Key: cc.Key, Tag: wire.ElemTag{VT: cc.InsertVT}}
		}
		decl := wire.ChildDecl{Kind: cc.Kind, Value: cc.Value}
		child := s.newChildObject(parent, link, decl)
		if !cc.ValueVT.IsZero() && !child.isComposite() {
			_ = child.hist.Insert(cc.ValueVT, cc.Value, history.Committed)
		}
		switch parent.kind {
		case KindList:
			parent.elems = append(parent.elems, listElem{tag: cc.Tag, child: child, insertVT: cc.InsertVT})
		case KindTuple:
			parent.entries = append(parent.entries, tupleEntry{key: cc.Key, child: child, insertVT: cc.InsertVT})
		}
		// Structural facts are part of the composite's committed history.
		if !cc.InsertVT.IsZero() {
			if _, ok := parent.hist.Get(cc.InsertVT); !ok {
				_ = parent.hist.Insert(cc.InsertVT, []wire.Op(nil), history.Committed)
			}
		}
		s.restoreChildren(child, cc.Children)
	}
}

// Objects returns the refs of all top-level objects, for post-restore
// discovery (sorted by ID).
func (s *Site) Objects() ([]ObjRef, error) {
	var out []ObjRef
	err := s.call(func() {
		// ID-sorted iteration gives the deterministic order directly.
		for _, id := range sortedObjectIDs(s.objects) {
			if o := s.objects[id]; o.parent == nil {
				out = append(out, ObjRef{o: o})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, err
}
