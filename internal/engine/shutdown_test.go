package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"decaf/internal/transport"
	"decaf/internal/vtime"
)

// startLoneSite builds one started site on its own network.
func startLoneSite(t *testing.T, opts Options) (*Site, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork(transport.Config{})
	ep, err := net.Endpoint(vtime.SiteID(1))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSite(ep, opts)
	s.Start()
	return s, net
}

// TestStopDrainsNotifications is the regression test for the shutdown
// notification loss: notify() used to silently drop callbacks once
// s.stop closed, and the notifier's post-stop drain raced producers, so
// notifications enqueued around Stop were nondeterministically lost.
// Stop is now deterministic — intake closes only after the event loop
// (the sole producer) has exited, and the notifier drains in full — so
// across 1000 Stop cycles every accepted notification must be
// delivered: Enqueued == Delivered, Dropped == 0, and the user
// callbacks actually ran.
func TestStopDrainsNotifications(t *testing.T) {
	const cycles = 1000
	for c := 0; c < cycles; c++ {
		s, net := startLoneSite(t, Options{})
		ref, err := s.CreateObject(KindInt, "x", int64(0))
		if err != nil {
			t.Fatal(err)
		}
		var ran atomic.Uint64
		if _, err := s.AttachView([]ObjRef{ref}, Optimistic, ViewFuncs{
			Update: func(SnapshotData) { ran.Add(1) },
		}); err != nil {
			t.Fatal(err)
		}
		// Submit without waiting: some of these land their notifications
		// while Stop is already underway — the racy window of the old
		// implementation.
		for k := 0; k < 5; k++ {
			v := int64(k)
			s.Submit(&Txn{Execute: func(tx *Tx) error { return tx.Write(ref, v) }})
		}
		s.Stop()
		st := s.Stats()
		if st.NotifyDropped != 0 {
			t.Fatalf("cycle %d: %d notifications dropped under the default queue limit", c, st.NotifyDropped)
		}
		if st.NotifyEnqueued != st.NotifyDelivered {
			t.Fatalf("cycle %d: enqueued=%d delivered=%d; accepted notifications were lost in Stop",
				c, st.NotifyEnqueued, st.NotifyDelivered)
		}
		if ran.Load() == 0 && st.NotifyEnqueued > 0 {
			t.Fatalf("cycle %d: %d notifications enqueued but no user callback ran", c, st.NotifyEnqueued)
		}
		net.Close()
	}
}

// TestNotifierBackpressureNoDeadlock is the regression test for the
// notifier backpressure deadlock: with the old fixed 4096-slot channel,
// a full buffer blocked the event loop inside notify(), and a user
// callback that re-entered the site API (waiting on the event loop)
// deadlocked the site. The overflow policy now drops-and-counts instead
// of blocking, so a slow re-entrant callback plus a tiny queue limit
// must still make progress and surface the drops on the counter.
func TestNotifierBackpressureNoDeadlock(t *testing.T) {
	s, net := startLoneSite(t, Options{NotifyQueueLimit: 2})
	defer func() {
		s.Stop()
		net.Close()
	}()
	ref, err := s.CreateObject(KindInt, "x", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	var reentered atomic.Uint64
	if _, err := s.AttachView([]ObjRef{ref}, Optimistic, ViewFuncs{
		Update: func(SnapshotData) {
			time.Sleep(time.Millisecond) // slow consumer: queue overflows
			// Re-enter the site API from the callback; this parked
			// forever when the loop was wedged in notify().
			if _, err := s.ReadCommitted(ref); err == nil {
				reentered.Add(1)
			}
		},
		// Commit notifications are lossy (gen-gated) and not coalesced,
		// so with the slow Update above they overflow the 2-slot queue
		// and exercise the drop-and-count policy.
		Commit: func() {},
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 60; k++ {
			v := int64(k)
			if res := s.Submit(&Txn{Execute: func(tx *Tx) error { return tx.Write(ref, v) }}).Wait(); !res.Committed {
				t.Errorf("txn %d: %+v", k, res)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("site deadlocked: event loop blocked on the full notifier queue")
	}
	// Submissions outrun the 1ms-per-callback consumer; give the
	// notifier a moment to deliver what survived the overflow.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && reentered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if reentered.Load() == 0 {
		t.Fatal("re-entrant callback never completed a site API call")
	}
	if s.Stats().NotifyDropped == 0 {
		t.Error("queue limit 2 with a slow consumer should have dropped notifications")
	}
}

// TestSubmitAfterStopSettlesHandle is the regression test for do()'s
// silent-drop path: posting work to a stopped site used to vanish,
// leaving the returned Handle waiting forever. Every handle-producing
// API must now settle the handle with ErrSiteStopped.
func TestSubmitAfterStopSettlesHandle(t *testing.T) {
	s, net := startLoneSite(t, Options{})
	defer net.Close()
	ref, err := s.CreateObject(KindInt, "x", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	s.Stop()

	resCh := make(chan Result, 1)
	go func() {
		resCh <- s.Submit(&Txn{Execute: func(tx *Tx) error { return tx.Write(ref, 1) }}).Wait()
	}()
	select {
	case res := <-resCh:
		if !errors.Is(res.Err, ErrSiteStopped) {
			t.Fatalf("Submit after Stop: got %+v, want ErrSiteStopped", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Submit after Stop: handle never settled (silent drop)")
	}

	if res := s.Promote(ref).Wait(); !errors.Is(res.Err, ErrSiteStopped) {
		t.Fatalf("Promote after Stop: got %+v, want ErrSiteStopped", res)
	}
	if res := s.JoinObject(ref, 2, ref.ID()).Wait(); !errors.Is(res.Err, ErrSiteStopped) {
		t.Fatalf("JoinObject after Stop: got %+v, want ErrSiteStopped", res)
	}
}
