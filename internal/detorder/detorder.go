// Package detorder provides deterministic iteration over Go maps.
//
// Go randomizes map iteration order on every range statement. That is
// fine for state with pure set semantics, but anywhere iteration order
// feeds something observable — protocol fan-out (which peer's message
// enters the network first), snapshot encoding (which object's bytes
// come first), trace and debug output — randomized order turns a
// deterministic algorithm into a coin flip. The replicated engine's
// whole correctness story (DESIGN.md §12) requires a run to be a pure
// function of (profile, seed), so every order-sensitive map walk in the
// deterministic packages goes through one of these helpers instead of
// ranging the map directly.
//
// The decaf-vet `maporder` analyzer enforces the discipline: a `range`
// over a map type inside engine/history/gvt/vtime/sim whose body
// mutates escaping state, sends, or emits output is a diagnostic;
// ranging over the sorted key slice returned by this package is the
// sanctioned pattern. Bodies that are provably commutative may instead
// carry a reasoned //decaf:ignore maporder directive.
//
// The cost is one O(n log n) sort per walk, paid off the per-message
// hot path (fan-outs, snapshots, GC sweeps happen per batch or per
// protocol round, not per message).
package detorder

import (
	"cmp"
	"sort"
)

// Sorted returns the keys of m in ascending natural order.
func Sorted[K cmp.Ordered, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedFunc returns the keys of m sorted by less, for key types (VTs,
// object IDs) whose order is a method rather than <. less must describe
// a strict weak ordering that is total over the keys present, or the
// result order is unspecified.
func SortedFunc[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
