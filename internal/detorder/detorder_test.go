package detorder

import (
	"reflect"
	"testing"
)

func TestSorted(t *testing.T) {
	m := map[uint32]string{7: "g", 1: "a", 5: "e", 2: "b"}
	for i := 0; i < 50; i++ {
		got := Sorted(m)
		want := []uint32{1, 2, 5, 7}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	if got := Sorted(map[int]int(nil)); len(got) != 0 {
		t.Fatalf("Sorted(nil) = %v, want empty", got)
	}
}

type pair struct{ a, b int }

func (p pair) less(q pair) bool {
	if p.a != q.a {
		return p.a < q.a
	}
	return p.b < q.b
}

func TestSortedFunc(t *testing.T) {
	m := map[pair]bool{
		{2, 1}: true, {1, 9}: true, {1, 2}: true, {3, 0}: true,
	}
	want := []pair{{1, 2}, {1, 9}, {2, 1}, {3, 0}}
	for i := 0; i < 50; i++ {
		got := SortedFunc(m, pair.less)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedFunc = %v, want %v", got, want)
		}
	}
}
